#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace tdam::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("AmClient: " + what + ": " + std::strerror(errno));
}

}  // namespace

AmClient::AmClient(const std::string& host, int port,
                   std::uint8_t protocol_version)
    : version_(protocol_version) {
  if (port <= 0 || port > 65535)
    throw std::invalid_argument("AmClient: port must be in [1, 65535] (got " +
                                std::to_string(port) + ")");
  if (protocol_version < kMinProtocolVersion ||
      protocol_version > kProtocolVersion)
    throw std::invalid_argument(
        "AmClient: protocol_version must be in [" +
        std::to_string(kMinProtocolVersion) + ", " +
        std::to_string(kProtocolVersion) + "] (got " +
        std::to_string(protocol_version) + ")");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("AmClient: bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

AmClient::~AmClient() {
  if (fd_ >= 0) ::close(fd_);
}

AmClient::AmClient(AmClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      version_(other.version_),
      next_request_id_(other.next_request_id_) {}

// --- transport --------------------------------------------------------------

void AmClient::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool AmClient::read_frame(FrameHeader& header,
                          std::vector<std::uint8_t>& payload) {
  std::uint8_t raw[kHeaderBytes];
  std::size_t got = 0;
  while (got < kHeaderBytes) {
    const ssize_t n = ::read(fd_, raw + got, kHeaderBytes - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw std::runtime_error("AmClient: EOF inside a frame header");
    }
    got += static_cast<std::size_t>(n);
  }
  header = decode_header(raw, kHeaderBytes);
  payload.resize(header.payload_len);
  got = 0;
  while (got < payload.size()) {
    const ssize_t n = ::read(fd_, payload.data() + got, payload.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0)
      throw std::runtime_error("AmClient: EOF inside a frame payload");
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void AmClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  write_all(bytes.data(), bytes.size());
}

void AmClient::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

// --- pipelined sends --------------------------------------------------------

std::uint64_t AmClient::send_hello() {
  const auto id = next_id();
  const auto frame = encode_hello(id, version_);
  write_all(frame.data(), frame.size());
  return id;
}

std::uint64_t AmClient::send_query(const std::vector<std::uint16_t>& digits,
                                   std::uint32_t k,
                                   std::uint32_t deadline_us) {
  const auto id = next_id();
  QueryRequest request;
  request.k = k;
  request.deadline_us = deadline_us;
  request.digits = digits;
  const auto frame = encode_query(id, request, version_);
  write_all(frame.data(), frame.size());
  return id;
}

std::uint64_t AmClient::send_store(const std::vector<std::uint16_t>& digits) {
  const auto id = next_id();
  const auto frame = encode_store(id, StoreRequest{digits}, version_);
  write_all(frame.data(), frame.size());
  return id;
}

std::uint64_t AmClient::send_store_batch(
    const std::vector<std::uint16_t>& digits, std::uint32_t digits_per_row) {
  const auto id = next_id();
  StoreBatchRequest request;
  request.digits_per_row = digits_per_row;
  request.digits = digits;
  const auto frame = encode_store_batch(id, request, version_);
  write_all(frame.data(), frame.size());
  return id;
}

std::uint64_t AmClient::send_stats() {
  const auto id = next_id();
  const auto frame = encode_stats(id, version_);
  write_all(frame.data(), frame.size());
  return id;
}

std::uint64_t AmClient::send_metrics(MetricsFormat format) {
  const auto id = next_id();
  const auto frame = encode_metrics(id, MetricsRequest{format}, version_);
  write_all(frame.data(), frame.size());
  return id;
}

// --- receive ----------------------------------------------------------------

bool AmClient::recv(Reply& out) {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  if (!read_frame(header, payload)) return false;
  out = Reply{};
  out.type = header.type;
  out.request_id = header.request_id;
  out.trace_id = header.trace_id;
  switch (header.type) {
    case MsgType::kHelloReply:
      out.hello = decode_hello_reply(payload.data(), payload.size());
      return true;
    case MsgType::kQueryReply:
      // The reply frame's own version picks the payload schema — a v1
      // server answering this client still decodes correctly.
      out.query =
          decode_query_reply(payload.data(), payload.size(), header.version);
      return true;
    case MsgType::kStoreReply:
      out.store = decode_store_reply(payload.data(), payload.size());
      return true;
    case MsgType::kStoreBatchReply:
      out.store_batch = decode_store_batch_reply(payload.data(), payload.size());
      return true;
    case MsgType::kClearReply:
      out.clear = decode_clear_reply(payload.data(), payload.size());
      return true;
    case MsgType::kStatsReply:
      // Like query replies, the STATS payload is version-dependent (v3
      // appended per-stage quantiles): decode by the frame's own version.
      out.stats =
          decode_stats_reply(payload.data(), payload.size(), header.version);
      return true;
    case MsgType::kMetricsReply:
      out.metrics = decode_metrics_reply(payload.data(), payload.size());
      return true;
    case MsgType::kError:
      out.error = decode_error(payload.data(), payload.size());
      return true;
    default:
      throw ProtocolError(WireCode::kUnknownType,
                          "AmClient: server sent unexpected frame type " +
                              std::to_string(static_cast<int>(header.type)));
  }
}

AmClient::Reply AmClient::wait_for(std::uint64_t request_id) {
  Reply reply;
  for (;;) {
    if (!recv(reply))
      throw std::runtime_error(
          "AmClient: connection closed while awaiting reply " +
          std::to_string(request_id));
    if (reply.request_id == request_id) return reply;
    // Replies for other pipelined requests are not ours to consume in
    // synchronous mode; one connection should use one style at a time.
  }
}

// --- synchronous calls ------------------------------------------------------

HelloReply AmClient::hello() {
  const auto reply = wait_for(send_hello());
  if (reply.type != MsgType::kHelloReply)
    throw ProtocolError(reply.error.code,
                        "AmClient: HELLO failed: " + reply.error.message);
  return reply.hello;
}

AmClient::Reply AmClient::query(const std::vector<std::uint16_t>& digits,
                                std::uint32_t k, std::uint32_t deadline_us) {
  return wait_for(send_query(digits, k, deadline_us));
}

AmClient::Reply AmClient::store(const std::vector<std::uint16_t>& digits) {
  return wait_for(send_store(digits));
}

AmClient::Reply AmClient::store_batch(
    const std::vector<std::uint16_t>& digits, std::uint32_t digits_per_row) {
  return wait_for(send_store_batch(digits, digits_per_row));
}

AmClient::Reply AmClient::clear() {
  const auto id = next_id();
  const auto frame = encode_clear(id, version_);
  write_all(frame.data(), frame.size());
  return wait_for(id);
}

StatsReply AmClient::stats() {
  const auto reply = wait_for(send_stats());
  if (reply.type != MsgType::kStatsReply)
    throw ProtocolError(reply.error.code,
                        "AmClient: STATS failed: " + reply.error.message);
  return reply.stats;
}

MetricsReply AmClient::metrics(MetricsFormat format) {
  const auto reply = wait_for(send_metrics(format));
  if (reply.type != MsgType::kMetricsReply)
    throw ProtocolError(reply.error.code,
                        "AmClient: METRICS failed: " + reply.error.message);
  return reply.metrics;
}

}  // namespace tdam::net
