// Layer 8 wire protocol: compact length-prefixed binary frames over TCP.
//
// Every message is one frame: a fixed 24-byte little-endian header followed
// by payload_len bytes of typed payload.
//
//   offset  size  field         notes
//   ------  ----  -----------   ----------------------------------------
//        0     2  magic         0x54AD ("TD-AM"), rejects line noise
//        2     1  version       kMinProtocolVersion..kProtocolVersion;
//                               anything else is an error.  Replies are
//                               stamped with the REQUEST's version, so a
//                               v1 client always hears v1 frames
//        3     1  type          MsgType
//        4     4  payload_len   bytes after the header (may be 0)
//        8     8  request_id    client-chosen, echoed verbatim in replies
//                               (pipelining correlation); 0 when a reply
//                               answers an unparseable request
//       16     8  trace_id      server-assigned per-query trace id in
//                               QUERY_REPLY headers (correlates with the
//                               flight recorder); 0 in requests and
//                               non-query replies
//
// Requests:  HELLO (empty), QUERY (k, deadline_us, digits), STORE (digits),
//            STORE_BATCH (row-major digit rows), CLEAR (empty),
//            STATS (empty), METRICS (u8 format selector).
// Replies:   one per request type, plus ERROR for requests the server could
//            not act on (malformed/oversized frames, invalid arguments).
//
// Status and error share one namespace (WireCode) so a client switch is
// total: kOk/kRejected/kShed/kDeadlineExpired mirror runtime::QueryStatus
// one-to-one (a degraded query is answered with a QUERY_REPLY carrying the
// code, NOT a disconnect), and the protocol-level codes cover frames the
// server refused to decode.
//
// All integers are little-endian on the wire; doubles are IEEE-754 bit
// patterns in a u64.  Digits travel as u16 (backends cap levels well below
// 2^16).  Encoding never throws on well-formed inputs; decoding throws
// ProtocolError (carrying the WireCode a server should answer with) on any
// bounds violation, bad magic/version, or inconsistent inner lengths.
//
// Version history:
//   v1 — QUERY replies carry per-entry {i32 row, i32 distance}.
//   v2 — the score redesign: QUERY replies carry the index's metric id
//        (core::DigitMetric wire value) and per-entry {i32 row, f64 score},
//        so similarity metrics survive the wire exactly.  Every other
//        payload is byte-identical to v1.  Servers answer each request in
//        the version its header carried: v1 clients still get the integer
//        encoding (scores truncated toward zero), v2 clients get float64
//        scores + metric id.
//   v3 — observability: the METRICS/METRICS_REPLY pair (full registry
//        export over the query socket — Prometheus text, JSON, or the
//        trace/slow-query dump — so a scrape needs no second port), and
//        STATS replies grow per-stage p50/p99 doubles (queue_wait,
//        batch_wait, scan, merge) after the v2 fields.  v1/v2 STATS
//        payloads are byte-identical to before; a METRICS request in a
//        v1/v2 header is answered with kUnknownType, exactly as an old
//        server would answer it.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend.h"
#include "runtime/scheduler.h"

namespace tdam::net {

inline constexpr std::uint16_t kMagic = 0x54AD;
inline constexpr std::uint8_t kProtocolVersion = 3;
// Oldest version still decoded; servers answer v1 requests with v1 frames.
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
// Default cap a server enforces on payload_len (TcpServerOptions can lower
// or raise it); protects the per-connection buffer from hostile lengths.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloReply = 2,
  kQuery = 3,
  kQueryReply = 4,
  kStore = 5,
  kStoreReply = 6,
  kClear = 7,
  kClearReply = 8,
  kStats = 9,
  kStatsReply = 10,
  kError = 11,
  kStoreBatch = 12,
  kStoreBatchReply = 13,
  kMetrics = 14,       // v3+: full observability export over the socket
  kMetricsReply = 15,
};

// What a METRICS request asks the server to render.
enum class MetricsFormat : std::uint8_t {
  kPrometheus = 0,  // text exposition, same bytes as the HTTP /metrics path
  kJson = 1,        // full registry JSON incl. trace + slow-query sections
  kTraces = 2,      // flight-recorder + slow-query dump only (HTTP /traces)
};

// Terminal outcome of a request, as seen on the wire.  The first four values
// mirror runtime::QueryStatus (same meaning, stable numbering); the rest are
// protocol-level errors answered with an ERROR frame.
enum class WireCode : std::uint8_t {
  kOk = 0,
  kRejected = 1,         // bounced at admission (kReject policy / shutdown)
  kShed = 2,             // evicted from the queue by a newer query
  kDeadlineExpired = 3,  // deadline passed before dispatch
  kMalformedFrame = 4,   // payload failed to decode
  kOversizedFrame = 5,   // payload_len above the server's frame cap
  kUnsupportedVersion = 6,
  kUnknownType = 7,
  kInvalidArgument = 8,  // decoded fine, rejected by the serving layer
  kInternal = 9,         // engine threw while answering
};

// Stable label for counters and log lines (never throws; unknown values map
// to "unknown").
const char* wire_code_name(WireCode code);

WireCode to_wire_code(runtime::QueryStatus status);

// Thrown by decoders; `code` is what the server should answer with.
struct ProtocolError : std::runtime_error {
  ProtocolError(WireCode c, const std::string& message)
      : std::runtime_error(message), code(c) {}
  WireCode code;
};

struct FrameHeader {
  std::uint16_t magic = kMagic;
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kHello;
  std::uint32_t payload_len = 0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
};

// --- typed messages -------------------------------------------------------

struct HelloReply {
  std::uint8_t protocol_version = kProtocolVersion;
  std::uint32_t stages = 0;   // digits per stored vector
  std::uint32_t levels = 0;   // digit alphabet size
  std::uint32_t max_frame_bytes = 0;
  std::uint64_t generation = 0;
  std::string backend;        // registry name serving this index
};

struct QueryRequest {
  std::uint32_t k = 1;
  std::uint32_t deadline_us = 0;  // relative to arrival; 0 = no deadline
  std::vector<std::uint16_t> digits;
};

struct QueryReply {
  WireCode code = WireCode::kInternal;
  std::uint64_t generation = 0;
  // The serving index's metric: tells the client how to order/interpret the
  // scores.  On the wire from v2 on; a v1 decode leaves the default.
  core::DigitMetric metric = core::DigitMetric::kMismatchCount;
  std::vector<core::TopKEntry> entries;  // present iff code == kOk
};

struct StoreRequest {
  std::vector<std::uint16_t> digits;
};

struct StoreReply {
  std::int32_t row = -1;  // global row id assigned to the stored vector
  std::uint64_t generation = 0;
};

// Multi-row write, so a write stream costs one round-trip per batch rather
// than per row.  `digits` is row-major, rows() * digits_per_row entries;
// rows are stored in request order.
struct StoreBatchRequest {
  std::uint32_t digits_per_row = 0;
  std::vector<std::uint16_t> digits;

  std::uint32_t rows() const {
    return digits_per_row == 0
               ? 0
               : static_cast<std::uint32_t>(digits.size() / digits_per_row);
  }
};

struct StoreBatchReply {
  std::uint32_t rows = 0;       // rows this request stored
  std::int32_t first_row = -1;  // global id of the first stored row, -1 if none
  std::uint64_t generation = 0; // published epoch after the last store
};

struct ClearReply {
  std::uint64_t generation = 0;
};

struct StatsReply {
  std::uint64_t queries = 0;  // answered by the engine (kOk)
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t rows = 0;        // vectors resident in the index
  std::uint64_t generation = 0;
  std::uint64_t connections = 0;      // currently open TCP connections
  std::uint64_t frames_in = 0;        // frames decoded over server lifetime
  std::uint64_t protocol_errors = 0;  // error frames sent over lifetime
  std::uint64_t segments = 0;         // segments in the published snapshot
  std::uint64_t delta_rows = 0;       // rows in unsealed delta segments
  std::uint64_t compactions = 0;      // compaction merges completed
  double qps = 0.0;    // cumulative engine throughput
  double p50_s = 0.0;  // per-query wall latency quantiles (engine-side)
  double p99_s = 0.0;
  // v3+: per-stage latency quantiles, so a dashboard can split a latency
  // regression into queueing vs. scanning without scraping Prometheus.
  // A v1/v2 decode leaves them 0.
  double queue_wait_p50_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double batch_wait_p50_s = 0.0;
  double batch_wait_p99_s = 0.0;
  double scan_p50_s = 0.0;
  double scan_p99_s = 0.0;
  double merge_p50_s = 0.0;
  double merge_p99_s = 0.0;
};

// METRICS request/reply (v3+): the server renders its whole metrics
// registry — plus trace/slow-query state where the format includes it — as
// one text blob.  Large (can be hundreds of KiB with fine-grained
// histograms): the reply is exempt from the server's inbound frame cap,
// which only governs what clients send.
struct MetricsRequest {
  MetricsFormat format = MetricsFormat::kPrometheus;
};

struct MetricsReply {
  MetricsFormat format = MetricsFormat::kPrometheus;
  std::string text;
};

struct ErrorReply {
  WireCode code = WireCode::kInternal;
  std::string message;
};

// --- byte-level helpers ---------------------------------------------------

// Appends little-endian scalars / length-prefixed blobs to a byte vector.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { put(v, 2); }
  void u32(std::uint32_t v) { put(v, 4); }
  void u64(std::uint64_t v) { put(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  // u32 length + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  void put(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i)
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
  std::vector<std::uint8_t>& out_;
};

// Bounds-checked little-endian reads; any overrun throws ProtocolError
// (kMalformedFrame) naming the field that fell off the end.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8(const char* field) {
    return static_cast<std::uint8_t>(take(1, field));
  }
  std::uint16_t u16(const char* field) {
    return static_cast<std::uint16_t>(take(2, field));
  }
  std::uint32_t u32(const char* field) {
    return static_cast<std::uint32_t>(take(4, field));
  }
  std::uint64_t u64(const char* field) { return take(8, field); }
  std::int32_t i32(const char* field) {
    return static_cast<std::int32_t>(u32(field));
  }
  double f64(const char* field) {
    const std::uint64_t bits = u64(field);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str(const char* field);

  std::size_t remaining() const { return size_ - pos_; }
  // Whole payloads must be consumed exactly; trailing garbage means the
  // producer and consumer disagree about the schema.
  void expect_empty(const char* what) const {
    if (pos_ != size_)
      throw ProtocolError(WireCode::kMalformedFrame,
                          std::string(what) + ": " +
                              std::to_string(size_ - pos_) +
                              " trailing bytes after payload");
  }

 private:
  std::uint64_t take(std::size_t bytes, const char* field);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- frame encode / decode ------------------------------------------------

// Serializes the header into exactly kHeaderBytes at the start of `out`
// (payload_len is taken from the header struct, not inferred).
void encode_header(const FrameHeader& header, std::vector<std::uint8_t>& out);

// Parses (and validates magic/version) the first kHeaderBytes of `data`.
// Size below kHeaderBytes, wrong magic, or an out-of-range version throw
// ProtocolError with kMalformedFrame / kUnsupportedVersion (any version in
// [kMinProtocolVersion, kProtocolVersion] is accepted).  payload_len is NOT
// checked against any cap here — the transport owns that policy.
FrameHeader decode_header(const std::uint8_t* data, std::size_t size);

// Frame builders: header + typed payload in one buffer, payload_len filled
// in.  `request_id` is echoed; `trace_id` only applies to query replies.
// `version` stamps the frame header — a server passes the version the
// request arrived with so every reply speaks the client's dialect; clients
// pass the version they want to speak (default: newest).  Only the QUERY
// reply payload actually differs between versions.
std::vector<std::uint8_t> encode_hello(std::uint64_t request_id,
                                       std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_hello_reply(
    std::uint64_t request_id, const HelloReply& reply,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_query(std::uint64_t request_id,
                                       const QueryRequest& request,
                                       std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_query_reply(
    std::uint64_t request_id, std::uint64_t trace_id, const QueryReply& reply,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_store(std::uint64_t request_id,
                                       const StoreRequest& request,
                                       std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_store_reply(
    std::uint64_t request_id, const StoreReply& reply,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_store_batch(
    std::uint64_t request_id, const StoreBatchRequest& request,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_store_batch_reply(
    std::uint64_t request_id, const StoreBatchReply& reply,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_clear(std::uint64_t request_id,
                                       std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_clear_reply(
    std::uint64_t request_id, const ClearReply& reply,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_stats(std::uint64_t request_id,
                                       std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_stats_reply(
    std::uint64_t request_id, const StatsReply& reply,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_metrics(
    std::uint64_t request_id, const MetricsRequest& request,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_metrics_reply(
    std::uint64_t request_id, const MetricsReply& reply,
    std::uint8_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       const ErrorReply& reply,
                                       std::uint8_t version = kProtocolVersion);

// Payload decoders (the caller already split the frame with decode_header).
// All throw ProtocolError on truncation, inconsistent inner counts, or
// trailing bytes.
HelloReply decode_hello_reply(const std::uint8_t* payload, std::size_t size);
QueryRequest decode_query(const std::uint8_t* payload, std::size_t size);
// The QUERY reply payload is the one version-dependent schema: pass the
// frame header's version so the right decoding is chosen (v1: i32 distance,
// default metric; v2: metric id + f64 score).
QueryReply decode_query_reply(const std::uint8_t* payload, std::size_t size,
                              std::uint8_t version = kProtocolVersion);
StoreRequest decode_store(const std::uint8_t* payload, std::size_t size);
StoreReply decode_store_reply(const std::uint8_t* payload, std::size_t size);
StoreBatchRequest decode_store_batch(const std::uint8_t* payload,
                                     std::size_t size);
StoreBatchReply decode_store_batch_reply(const std::uint8_t* payload,
                                         std::size_t size);
ClearReply decode_clear_reply(const std::uint8_t* payload, std::size_t size);
// The STATS reply payload grew in v3 (per-stage quantiles); pass the frame
// header's version so the right suffix is expected.
StatsReply decode_stats_reply(const std::uint8_t* payload, std::size_t size,
                              std::uint8_t version = kProtocolVersion);
MetricsRequest decode_metrics(const std::uint8_t* payload, std::size_t size);
MetricsReply decode_metrics_reply(const std::uint8_t* payload,
                                  std::size_t size);
ErrorReply decode_error(const std::uint8_t* payload, std::size_t size);

}  // namespace tdam::net
