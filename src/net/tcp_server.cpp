#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/export.h"

namespace tdam::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("AmTcpServer: " + what + ": " +
                           std::strerror(errno));
}

// Closeable MPSC handoff between the I/O, submit, and completion threads.
// push() returns false once closed; pop() blocks and returns nullopt only
// when closed AND drained — the consumer's exit condition, which is what
// makes shutdown drain instead of drop.
template <typename T>
class TaskQueue {
 public:
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace

struct AmTcpServer::Impl {
  // --- connection state ---------------------------------------------------

  struct IoThread;

  // One frame queued for writing.  A wire-traced QUERY reply carries its
  // span here: the io_send stamp only exists once the frame's last byte
  // reaches the kernel, so the span is finished — and recorded — at that
  // moment, by the I/O thread.  Frames dropped by a dying connection lose
  // their span (the client never saw the reply either).
  struct OutFrame {
    std::vector<std::uint8_t> bytes;
    bool has_span = false;
    obs::SpanRecord span;
  };

  struct Connection {
    int fd = -1;
    IoThread* io = nullptr;  // owning epoll loop

    // Read side — touched only by the owning I/O thread.
    std::vector<std::uint8_t> in;
    std::size_t in_consumed = 0;
    std::size_t discard_remaining = 0;  // oversized payload being skipped
    int protocol_errors = 0;            // connection-scoped error counter
    bool closing = false;               // hang up once the outbox flushes
    bool want_write = false;            // EPOLLOUT currently armed

    // Write side — producers are the submit/completion/I-O threads.
    std::mutex out_mutex;
    std::deque<OutFrame> outbox;
    std::size_t out_front_off = 0;      // bytes of outbox.front() written
    std::atomic<std::size_t> out_bytes{0};
    std::atomic<bool> closed{false};
  };

  struct IoThread {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    // Cross-thread handoff into this loop: connections to register and
    // connections with fresh outbox bytes (write interest).
    std::mutex inbox_mutex;
    std::vector<std::shared_ptr<Connection>> inbox_new;
    std::vector<std::shared_ptr<Connection>> inbox_kick;
    // Live connections, owned by this loop.
    std::unordered_map<int, std::shared_ptr<Connection>> conns;
  };

  struct Request {
    std::shared_ptr<Connection> conn;
    MsgType type = MsgType::kHello;
    // The version the request frame carried; every reply to it is encoded
    // in this dialect, so v1 clients keep hearing v1 frames.
    std::uint8_t version = kProtocolVersion;
    std::uint64_t request_id = 0;
    QueryRequest query;            // kQuery only
    StoreRequest store;            // kStore only
    StoreBatchRequest store_batch; // kStoreBatch only
    MetricsRequest metrics;        // kMetrics only
    // kQuery with tracing on: the wire-side span seed.  enqueue_ns is the
    // frame-receipt instant; io_recv/decode are stamped by the I/O thread,
    // submit_queue by the submit thread just before AmServer::submit.
    obs::SpanRecord seed;
  };

  struct Completion {
    std::shared_ptr<Connection> conn;
    std::uint8_t version = kProtocolVersion;
    std::uint64_t request_id = 0;
    std::future<runtime::ServedResult> future;
  };

  // --- members ------------------------------------------------------------

  runtime::AmServer& am;
  TcpServerOptions opts;
  int bound_port = 0;
  int listen_fd = -1;

  std::atomic<bool> stopping{false};  // phase 1: no new reads/accepts
  std::atomic<bool> io_stop{false};   // phase 2: loops close and exit
  bool stopped = false;               // stop() ran to completion
  std::mutex stop_mutex;              // serializes stop()

  std::vector<std::unique_ptr<IoThread>> io;
  std::atomic<std::uint64_t> next_io = 0;  // round-robin accept target

  TaskQueue<Request> requests;
  TaskQueue<Completion> completions;
  std::thread submit_thread;
  std::thread completion_thread;

  // For the shutdown flush scan (I/O threads own the live maps).
  std::mutex all_conns_mutex;
  std::vector<std::weak_ptr<Connection>> all_conns;
  std::atomic<int> open_connections{0};

  // Instruments live in the AmServer's registry so the existing exporters
  // scrape them alongside the serving metrics.
  obs::Gauge* connections_gauge = nullptr;
  obs::Counter* connections_total = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Counter* frames_in = nullptr;
  obs::Counter* frames_out = nullptr;
  obs::Counter* protocol_errors_total = nullptr;
  std::unordered_map<std::uint8_t, obs::Counter*> protocol_errors_by_code;

  Impl(runtime::AmServer& server, TcpServerOptions options)
      : am(server), opts(std::move(options)) {
    validate_options();
    register_metrics();
    open_listener();
    try {
      start_threads();
    } catch (...) {
      ::close(listen_fd);
      throw;
    }
  }

  ~Impl() { stop(); }

  void validate_options() const {
    if (opts.max_frame_bytes <= 0)
      throw std::invalid_argument(
          "AmTcpServer: max_frame_bytes must be positive (got " +
          std::to_string(opts.max_frame_bytes) + ")");
    if (opts.io_threads < 1)
      throw std::invalid_argument(
          "AmTcpServer: io_threads must be >= 1 (got " +
          std::to_string(opts.io_threads) + ")");
    if (opts.max_protocol_errors < 1)
      throw std::invalid_argument(
          "AmTcpServer: max_protocol_errors must be >= 1 (got " +
          std::to_string(opts.max_protocol_errors) + ")");
    if (opts.drain_timeout < 0.0)
      throw std::invalid_argument(
          "AmTcpServer: drain_timeout must be >= 0");
    if (opts.port < 0 || opts.port > 65535)
      throw std::invalid_argument("AmTcpServer: port must be in [0, 65535] (got " +
                                  std::to_string(opts.port) + ")");
  }

  void register_metrics() {
    auto& reg = am.metrics().registry();
    connections_gauge =
        &reg.gauge("tdam_net_connections", "Open client TCP connections");
    connections_total = &reg.counter("tdam_net_connections_total",
                                     "Client TCP connections accepted");
    bytes_in = &reg.counter("tdam_net_bytes_in_total",
                            "Bytes read from client sockets");
    bytes_out = &reg.counter("tdam_net_bytes_out_total",
                             "Bytes written to client sockets");
    frames_in = &reg.counter("tdam_net_frames_in_total",
                             "Frames decoded from client sockets");
    frames_out = &reg.counter("tdam_net_frames_out_total",
                              "Reply frames enqueued to client sockets");
    protocol_errors_total = &reg.counter("tdam_net_protocol_errors_total",
                                         "ERROR frames sent, all codes");
    // Pre-create the per-code family so a scrape shows explicit zeros.
    for (const auto code :
         {WireCode::kMalformedFrame, WireCode::kOversizedFrame,
          WireCode::kUnsupportedVersion, WireCode::kUnknownType,
          WireCode::kInvalidArgument, WireCode::kInternal}) {
      protocol_errors_by_code[static_cast<std::uint8_t>(code)] = &reg.counter(
          "tdam_net_protocol_errors_by_code_total",
          "ERROR frames sent, by wire code",
          {{"code", wire_code_name(code)}});
    }
  }

  void open_listener() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd);
      throw std::invalid_argument("AmTcpServer: bad bind address '" +
                                  opts.host + "'");
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0 ||
        ::listen(listen_fd, 128) < 0) {
      const int saved = errno;
      ::close(listen_fd);
      errno = saved;
      throw_errno("bind/listen on " + opts.host + ":" +
                  std::to_string(opts.port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      const int saved = errno;
      ::close(listen_fd);
      errno = saved;
      throw_errno("getsockname");
    }
    bound_port = static_cast<int>(ntohs(bound.sin_port));
  }

  void start_threads() {
    io.reserve(static_cast<std::size_t>(opts.io_threads));
    for (int i = 0; i < opts.io_threads; ++i) {
      auto t = std::make_unique<IoThread>();
      t->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (t->epoll_fd < 0) throw_errno("epoll_create1");
      t->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (t->event_fd < 0) throw_errno("eventfd");
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = t->event_fd;
      if (::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, t->event_fd, &ev) < 0)
        throw_errno("epoll_ctl(event_fd)");
      if (i == 0) {
        ev.events = EPOLLIN;
        ev.data.fd = listen_fd;
        if (::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) < 0)
          throw_errno("epoll_ctl(listen_fd)");
      }
      io.push_back(std::move(t));
    }
    for (std::size_t i = 0; i < io.size(); ++i)
      io[i]->thread = std::thread([this, i] { io_loop(*io[i], i == 0); });
    submit_thread = std::thread([this] { submit_loop(); });
    completion_thread = std::thread([this] { completion_loop(); });
  }

  // --- cross-thread wakeup ------------------------------------------------

  void wake(IoThread& t) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(t.event_fd, &one, sizeof one);
  }

  // Append encoded reply bytes to the connection and arm its I/O loop for
  // writing.  Safe from any thread; silently drops if the peer is gone.
  void send_frame(const std::shared_ptr<Connection>& conn,
                  std::vector<std::uint8_t> bytes) {
    OutFrame frame;
    frame.bytes = std::move(bytes);
    send_out_frame(conn, std::move(frame));
  }

  // Wire-traced variant: the span rides with the frame and is finished
  // (io_send stamped) and recorded when the last byte reaches the kernel.
  void send_frame(const std::shared_ptr<Connection>& conn,
                  std::vector<std::uint8_t> bytes,
                  const obs::SpanRecord& span) {
    OutFrame frame;
    frame.bytes = std::move(bytes);
    frame.has_span = true;
    frame.span = span;
    send_out_frame(conn, std::move(frame));
  }

  void send_out_frame(const std::shared_ptr<Connection>& conn,
                      OutFrame frame) {
    if (conn->closed.load(std::memory_order_acquire)) return;
    {
      std::lock_guard<std::mutex> lock(conn->out_mutex);
      conn->out_bytes.fetch_add(frame.bytes.size(), std::memory_order_relaxed);
      conn->outbox.push_back(std::move(frame));
    }
    frames_out->add(1.0);
    IoThread& t = *conn->io;
    {
      std::lock_guard<std::mutex> lock(t.inbox_mutex);
      t.inbox_kick.push_back(conn);
    }
    wake(t);
  }

  // ERROR reply + counters; the caller decides whether the stream can
  // continue (kMalformedFrame payloads can; a lost frame boundary cannot).
  void protocol_error(const std::shared_ptr<Connection>& conn,
                      std::uint64_t request_id, WireCode code,
                      const std::string& message,
                      std::uint8_t version = kProtocolVersion) {
    protocol_errors_total->add(1.0);
    if (const auto it =
            protocol_errors_by_code.find(static_cast<std::uint8_t>(code));
        it != protocol_errors_by_code.end())
      it->second->add(1.0);
    ++conn->protocol_errors;
    if (conn->protocol_errors >= opts.max_protocol_errors)
      conn->closing = true;  // hang up once this final reply flushes
    send_frame(conn, encode_error(request_id, {code, message}, version));
  }

  // --- I/O loop -----------------------------------------------------------

  void io_loop(IoThread& t, bool acceptor) {
    bool listener_open = acceptor;
    bool reads_enabled = true;
    std::vector<epoll_event> events(64);
    for (;;) {
      const int n = ::epoll_wait(t.epoll_fd, events.data(),
                                 static_cast<int>(events.size()), 50);
      if (n < 0 && errno != EINTR) break;

      if (stopping.load(std::memory_order_acquire) && reads_enabled) {
        // Phase 1: stop accepting and stop reading; keep writing.
        reads_enabled = false;
        if (listener_open) {
          ::epoll_ctl(t.epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
          ::close(listen_fd);
          listener_open = false;
        }
        for (auto& [fd, conn] : t.conns) update_interest(t, *conn, false);
      }

      for (int i = 0; i < n; ++i) {
        const int fd = events[static_cast<std::size_t>(i)].data.fd;
        const auto flags = events[static_cast<std::size_t>(i)].events;
        if (fd == t.event_fd) {
          std::uint64_t drained;
          while (::read(t.event_fd, &drained, sizeof drained) > 0) {
          }
          drain_inbox(t, reads_enabled);
          continue;
        }
        if (acceptor && fd == listen_fd) {
          if (listener_open && reads_enabled) accept_ready();
          continue;
        }
        const auto it = t.conns.find(fd);
        if (it == t.conns.end()) continue;  // closed earlier in this batch
        auto conn = it->second;             // keep alive across handlers
        if (flags & (EPOLLHUP | EPOLLERR)) {
          close_conn(t, conn);
          continue;
        }
        if ((flags & EPOLLIN) && reads_enabled && !conn->closing)
          handle_read(t, conn);
        if (conn->closed.load(std::memory_order_relaxed)) continue;
        if (flags & EPOLLOUT) handle_write(t, conn);
      }

      if (io_stop.load(std::memory_order_acquire)) break;
    }
    // Phase 2: close whatever is left.
    for (auto& [fd, conn] : t.conns) {
      conn->closed.store(true, std::memory_order_release);
      ::close(conn->fd);
      connections_gauge->add(-1.0);
      open_connections.fetch_sub(1, std::memory_order_relaxed);
    }
    t.conns.clear();
    if (listener_open) ::close(listen_fd);
    ::close(t.event_fd);
    ::close(t.epoll_fd);
  }

  void drain_inbox(IoThread& t, bool reads_enabled) {
    std::vector<std::shared_ptr<Connection>> fresh, kicked;
    {
      std::lock_guard<std::mutex> lock(t.inbox_mutex);
      fresh.swap(t.inbox_new);
      kicked.swap(t.inbox_kick);
    }
    for (auto& conn : fresh) {
      epoll_event ev{};
      ev.events = reads_enabled ? EPOLLIN : 0u;
      ev.data.fd = conn->fd;
      if (::epoll_ctl(t.epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
        conn->closed.store(true, std::memory_order_release);
        ::close(conn->fd);
        connections_gauge->add(-1.0);
        open_connections.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      t.conns.emplace(conn->fd, conn);
    }
    for (auto& conn : kicked) {
      if (conn->closed.load(std::memory_order_relaxed)) continue;
      if (t.conns.find(conn->fd) == t.conns.end()) continue;
      if (!conn->want_write) {
        conn->want_write = true;
        update_interest(t, *conn, reads_enabled);
      }
    }
  }

  void update_interest(IoThread& t, Connection& conn, bool reads_enabled) {
    epoll_event ev{};
    ev.events = ((reads_enabled && !conn.closing) ? EPOLLIN : 0u) |
                (conn.want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(t.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void accept_ready() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN (or transient error): wait for epoll
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      IoThread& target =
          *io[next_io.fetch_add(1, std::memory_order_relaxed) % io.size()];
      conn->io = &target;
      connections_total->add(1.0);
      connections_gauge->add(1.0);
      open_connections.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(all_conns_mutex);
        all_conns.push_back(conn);
      }
      {
        std::lock_guard<std::mutex> lock(target.inbox_mutex);
        target.inbox_new.push_back(conn);
      }
      wake(target);
    }
  }

  void close_conn(IoThread& t, const std::shared_ptr<Connection>& conn) {
    if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
    ::epoll_ctl(t.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    t.conns.erase(conn->fd);
    connections_gauge->add(-1.0);
    open_connections.fetch_sub(1, std::memory_order_relaxed);
  }

  void handle_read(IoThread& t, const std::shared_ptr<Connection>& conn) {
    // Wire-trace base: the instant this read burst started.  Every frame
    // parsed out of it anchors its span here, so io_recv covers the read
    // syscalls and buffer splice that delivered the frame.
    const std::int64_t recv_ns = obs::steady_now_ns();
    char buf[65536];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buf, sizeof buf);
      if (n > 0) {
        bytes_in->add(static_cast<double>(n));
        conn->in.insert(conn->in.end(), buf, buf + n);
        if (n < static_cast<ssize_t>(sizeof buf)) break;
        continue;
      }
      if (n == 0) {  // peer hung up
        close_conn(t, conn);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(t, conn);
      return;
    }
    parse_frames(t, conn, recv_ns);
  }

  void parse_frames(IoThread& t, const std::shared_ptr<Connection>& conn,
                    std::int64_t recv_ns) {
    auto& in = conn->in;
    for (;;) {
      if (conn->discard_remaining > 0) {
        const std::size_t avail = in.size() - conn->in_consumed;
        const std::size_t take = std::min(avail, conn->discard_remaining);
        conn->in_consumed += take;
        conn->discard_remaining -= take;
        if (conn->discard_remaining > 0) break;  // need more bytes to skip
        continue;
      }
      const std::size_t avail = in.size() - conn->in_consumed;
      if (avail < kHeaderBytes) break;
      FrameHeader header;
      try {
        header = decode_header(in.data() + conn->in_consumed, kHeaderBytes);
      } catch (const ProtocolError& e) {
        // Framing itself is lost (bad magic / bad version): answer, then
        // hang up — there is no way to find the next frame boundary.
        protocol_error(conn, 0, e.code, e.what());
        conn->closing = true;
        update_interest(t, *conn, false);
        return;
      }
      if (header.payload_len >
          static_cast<std::uint32_t>(opts.max_frame_bytes)) {
        protocol_error(conn, header.request_id, WireCode::kOversizedFrame,
                       "payload of " + std::to_string(header.payload_len) +
                           " bytes exceeds the server cap of " +
                           std::to_string(opts.max_frame_bytes));
        conn->in_consumed += kHeaderBytes;
        conn->discard_remaining = header.payload_len;
        if (conn->closing) {  // error budget exhausted
          update_interest(t, *conn, false);
          return;
        }
        continue;
      }
      if (avail < kHeaderBytes + header.payload_len) break;
      const std::uint8_t* payload =
          in.data() + conn->in_consumed + kHeaderBytes;
      conn->in_consumed += kHeaderBytes + header.payload_len;
      frames_in->add(1.0);
      dispatch_frame(conn, header, payload, header.payload_len, recv_ns);
      if (conn->closing) {
        update_interest(t, *conn, false);
        return;
      }
    }
    // Compact the rolling buffer once everything parseable is consumed.
    if (conn->in_consumed == in.size()) {
      in.clear();
      conn->in_consumed = 0;
    } else if (conn->in_consumed > (1u << 16)) {
      in.erase(in.begin(),
               in.begin() + static_cast<std::ptrdiff_t>(conn->in_consumed));
      conn->in_consumed = 0;
    }
  }

  void dispatch_frame(const std::shared_ptr<Connection>& conn,
                      const FrameHeader& header, const std::uint8_t* payload,
                      std::size_t size, std::int64_t recv_ns) {
    Request request;
    request.conn = conn;
    request.type = header.type;
    request.version = header.version;
    request.request_id = header.request_id;
    try {
      switch (header.type) {
        case MsgType::kHello:
        case MsgType::kClear:
        case MsgType::kStats:
          if (size != 0)
            throw ProtocolError(WireCode::kMalformedFrame,
                                "request carries an unexpected payload");
          break;
        case MsgType::kQuery: {
          const bool traced = am.recorder().enabled();
          if (traced) {
            request.seed.enqueue_ns = recv_ns;
            request.seed.io_recv_ns = obs::steady_now_ns() - recv_ns;
          }
          request.query = decode_query(payload, size);
          if (traced)
            request.seed.decode_ns = obs::steady_now_ns() - recv_ns;
          break;
        }
        case MsgType::kMetrics:
          if (header.version < 3)
            throw ProtocolError(WireCode::kUnknownType,
                                "METRICS requires protocol v3 (frame is v" +
                                    std::to_string(header.version) + ")");
          request.metrics = decode_metrics(payload, size);
          break;
        case MsgType::kStore:
          request.store = decode_store(payload, size);
          break;
        case MsgType::kStoreBatch:
          request.store_batch = decode_store_batch(payload, size);
          break;
        default:
          throw ProtocolError(
              WireCode::kUnknownType,
              "unexpected message type " +
                  std::to_string(static_cast<int>(header.type)));
      }
    } catch (const ProtocolError& e) {
      protocol_error(conn, header.request_id, e.code, e.what(),
                     header.version);
      return;  // connection survives a bad payload
    }
    if (!requests.push(std::move(request)))
      protocol_error(conn, header.request_id, WireCode::kRejected,
                     "server shutting down", header.version);
  }

  void handle_write(IoThread& t, const std::shared_ptr<Connection>& conn) {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    while (!conn->outbox.empty()) {
      const auto& front = conn->outbox.front();
      const std::size_t left = front.bytes.size() - conn->out_front_off;
      const ssize_t n =
          ::send(conn->fd, front.bytes.data() + conn->out_front_off, left,
                 MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // stay armed
        if (errno == EINTR) continue;
        close_conn(t, conn);
        return;
      }
      bytes_out->add(static_cast<double>(n));
      conn->out_bytes.fetch_sub(static_cast<std::size_t>(n),
                                std::memory_order_relaxed);
      conn->out_front_off += static_cast<std::size_t>(n);
      if (conn->out_front_off < front.bytes.size())
        return;  // kernel buffer full
      // The frame's last byte reached the kernel: the wire span is
      // complete.  Record it now — this is the deferred recording the
      // serving layers skipped for span.wire() spans, so /traces shows one
      // span covering io_recv through io_send.
      if (front.has_span) {
        obs::SpanRecord span = front.span;
        span.io_send_ns = obs::steady_now_ns() - span.enqueue_ns;
        am.recorder().record(span);
        am.slow_log().maybe_capture(span);
      }
      conn->outbox.pop_front();
      conn->out_front_off = 0;
    }
    // Flushed: drop write interest; a connection marked closing is done.
    conn->want_write = false;
    if (conn->closing) {
      close_conn(t, conn);
      return;
    }
    update_interest(t, *conn, !stopping.load(std::memory_order_relaxed));
  }

  // --- submit / completion threads ---------------------------------------

  void submit_loop() {
    while (auto request = requests.pop()) handle_request(*request);
  }

  void handle_request(Request& request) {
    switch (request.type) {
      case MsgType::kHello: {
        HelloReply reply;
        reply.stages = static_cast<std::uint32_t>(am.index().stages());
        reply.levels = static_cast<std::uint32_t>(am.index().levels());
        reply.max_frame_bytes =
            static_cast<std::uint32_t>(opts.max_frame_bytes);
        reply.generation = am.generation();
        reply.backend = am.index().backend_name();
        send_frame(request.conn, encode_hello_reply(request.request_id, reply,
                                                    request.version));
        return;
      }
      case MsgType::kQuery: {
        std::vector<int> digits(request.query.digits.begin(),
                                request.query.digits.end());
        const auto deadline =
            request.query.deadline_us > 0
                ? std::chrono::steady_clock::now() +
                      std::chrono::microseconds(request.query.deadline_us)
                : runtime::AmServer::kNoDeadline;
        try {
          // submit_queue: time spent in the decoded-request queue between
          // the I/O thread and this submit thread.
          if (request.seed.traced())
            request.seed.submit_queue_ns =
                obs::steady_now_ns() - request.seed.enqueue_ns;
          auto future = am.submit(digits, static_cast<int>(request.query.k),
                                  deadline, request.seed);
          completions.push(Completion{std::move(request.conn), request.version,
                                      request.request_id, std::move(future)});
        } catch (const std::invalid_argument& e) {
          protocol_error(request.conn, request.request_id,
                         WireCode::kInvalidArgument, e.what(),
                         request.version);
        }
        return;
      }
      case MsgType::kStore: {
        std::vector<int> digits(request.store.digits.begin(),
                                request.store.digits.end());
        try {
          StoreReply reply;
          reply.row = static_cast<std::int32_t>(am.store(digits));
          reply.generation = am.generation();
          send_frame(request.conn, encode_store_reply(request.request_id,
                                                      reply, request.version));
        } catch (const std::invalid_argument& e) {
          protocol_error(request.conn, request.request_id,
                         WireCode::kInvalidArgument, e.what(),
                         request.version);
        }
        return;
      }
      case MsgType::kStoreBatch: {
        const auto& batch = request.store_batch;
        const auto dpr = static_cast<std::size_t>(batch.digits_per_row);
        StoreBatchReply reply;
        std::vector<int> digits(dpr);
        try {
          for (std::uint32_t row = 0; row < batch.rows(); ++row) {
            const auto* src = batch.digits.data() + row * dpr;
            std::copy(src, src + dpr, digits.begin());
            const int id = am.store(digits);
            if (reply.rows == 0) reply.first_row = static_cast<std::int32_t>(id);
            ++reply.rows;
          }
          reply.generation = am.generation();
          send_frame(request.conn,
                     encode_store_batch_reply(request.request_id, reply,
                                              request.version));
        } catch (const std::invalid_argument& e) {
          // Rows before the bad one are already stored; the error names the
          // offending row so the client can account for the partial write.
          protocol_error(request.conn, request.request_id,
                         WireCode::kInvalidArgument,
                         "store_batch row " + std::to_string(reply.rows) +
                             ": " + e.what(),
                         request.version);
        }
        return;
      }
      case MsgType::kClear: {
        am.clear();
        send_frame(request.conn,
                   encode_clear_reply(request.request_id, {am.generation()},
                                      request.version));
        return;
      }
      case MsgType::kStats: {
        const auto snap = am.metrics().snapshot();
        StatsReply reply;
        reply.queries = snap.queries;
        reply.rejected = snap.rejected;
        reply.shed = snap.shed;
        reply.expired = snap.expired;
        reply.rows = static_cast<std::uint64_t>(am.index().size());
        reply.generation = am.generation();
        reply.connections = static_cast<std::uint64_t>(
            open_connections.load(std::memory_order_relaxed));
        reply.frames_in = static_cast<std::uint64_t>(frames_in->value());
        reply.protocol_errors =
            static_cast<std::uint64_t>(protocol_errors_total->value());
        reply.segments = snap.segments;
        reply.delta_rows = snap.delta_rows;
        reply.compactions = snap.compactions;
        reply.qps = snap.qps;
        reply.p50_s = snap.wall_quantile(0.50);
        reply.p99_s = snap.wall_quantile(0.99);
        const auto q = [](const obs::HistogramSnapshot& h, double p) {
          return h.total() > 0 ? h.quantile(p) : 0.0;
        };
        reply.queue_wait_p50_s = q(snap.queue_wait, 0.50);
        reply.queue_wait_p99_s = q(snap.queue_wait, 0.99);
        reply.batch_wait_p50_s = q(snap.batch_wait, 0.50);
        reply.batch_wait_p99_s = q(snap.batch_wait, 0.99);
        reply.scan_p50_s = q(snap.scan, 0.50);
        reply.scan_p99_s = q(snap.scan, 0.99);
        reply.merge_p50_s = q(snap.merge, 0.50);
        reply.merge_p99_s = q(snap.merge, 0.99);
        send_frame(request.conn, encode_stats_reply(request.request_id, reply,
                                                    request.version));
        return;
      }
      case MsgType::kMetrics: {
        MetricsReply reply;
        reply.format = request.metrics.format;
        std::ostringstream out;
        switch (request.metrics.format) {
          case MetricsFormat::kPrometheus:
            obs::export_prometheus(out, am.metrics().registry());
            break;
          case MetricsFormat::kJson:
            obs::export_json(out, am.metrics().registry(), &am.recorder(),
                             &am.slow_log());
            break;
          case MetricsFormat::kTraces:
            obs::export_traces_json(out, &am.recorder(), &am.slow_log());
            break;
        }
        reply.text = out.str();
        send_frame(request.conn, encode_metrics_reply(request.request_id,
                                                      reply, request.version));
        return;
      }
      default:
        // dispatch_frame only forwards the seven request types.
        protocol_error(request.conn, request.request_id,
                       WireCode::kUnknownType, "unroutable request",
                       request.version);
        return;
    }
  }

  void completion_loop() {
    const core::DigitMetric metric = am.index().metric();
    while (auto completion = completions.pop()) {
      QueryReply reply;
      reply.metric = metric;
      std::uint64_t trace_id = 0;
      obs::SpanRecord span;
      try {
        auto served = completion->future.get();
        reply.code = to_wire_code(served.status);
        reply.generation = served.generation;
        trace_id = served.trace_id;
        span = served.span;
        if (served.status == runtime::QueryStatus::kOk)
          reply.entries = std::move(served.result.entries);
      } catch (const std::exception& e) {
        protocol_error(completion->conn, completion->request_id,
                       WireCode::kInternal, e.what(), completion->version);
        continue;
      }
      // completion_wait: fulfillment to this thread picking the future up
      // (FIFO head-of-line wait included — that is the point of the stage).
      const bool wire_traced = span.traced() && span.wire();
      if (wire_traced)
        span.completion_wait_ns = obs::steady_now_ns() - span.enqueue_ns;
      auto bytes = encode_query_reply(completion->request_id, trace_id, reply,
                                      completion->version);
      if (wire_traced) {
        span.encode_ns = obs::steady_now_ns() - span.enqueue_ns;
        send_frame(completion->conn, std::move(bytes), span);
      } else {
        send_frame(completion->conn, std::move(bytes));
      }
    }
  }

  // --- shutdown -----------------------------------------------------------

  void stop() {
    std::lock_guard<std::mutex> lock(stop_mutex);
    if (stopped) return;
    // Phase 1: listener closes, reads stop (I/O loops observe `stopping`).
    stopping.store(true, std::memory_order_release);
    for (auto& t : io) wake(*t);
    // Drain every decoded request into the engine…
    requests.close();
    if (submit_thread.joinable()) submit_thread.join();
    // …then every in-flight future into reply bytes.
    completions.close();
    if (completion_thread.joinable()) completion_thread.join();
    // Flush outboxes (the I/O loops are still writing), bounded.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.drain_timeout));
    for (;;) {
      std::size_t pending = 0;
      {
        std::lock_guard<std::mutex> conns_lock(all_conns_mutex);
        for (const auto& weak : all_conns)
          if (const auto conn = weak.lock())
            if (!conn->closed.load(std::memory_order_relaxed))
              pending += conn->out_bytes.load(std::memory_order_relaxed);
      }
      if (pending == 0 || std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Phase 2: close everything and exit the loops.
    io_stop.store(true, std::memory_order_release);
    for (auto& t : io) wake(*t);
    for (auto& t : io)
      if (t->thread.joinable()) t->thread.join();
    stopped = true;
  }
};

AmTcpServer::AmTcpServer(runtime::AmServer& server, TcpServerOptions options)
    : impl_(std::make_unique<Impl>(server, std::move(options))) {}

AmTcpServer::~AmTcpServer() = default;

int AmTcpServer::port() const { return impl_->bound_port; }

const TcpServerOptions& AmTcpServer::options() const { return impl_->opts; }

int AmTcpServer::connections() const {
  return impl_->open_connections.load(std::memory_order_relaxed);
}

void AmTcpServer::stop() { impl_->stop(); }

}  // namespace tdam::net
