// Minimal embedded HTTP/1.1 listener for observability scrapes.
//
// Stock Prometheus speaks HTTP, not the TD-AM binary protocol, so a
// serve_tcp deployment exposes a second, tiny port serving exactly three
// read-only paths out of the co-located AmServer's registry:
//
//   GET /metrics       — Prometheus text exposition (obs::export_prometheus)
//   GET /metrics.json  — full registry JSON, incl. trace + slow-query
//                        sections (obs::export_json)
//   GET /traces        — flight-recorder + slow-query dump only
//                        (obs::export_traces_json)
//
// Anything else is answered 404; non-GET methods 405.  Every response
// closes the connection (Connection: close), which keeps the server a
// single accept-loop thread with no keep-alive state — a scraper hitting
// it once per 15 s does not need more, and the serving hot path never
// competes with it for a lock (the registry's snapshot paths are the same
// ones the binary METRICS message uses).
//
// This is deliberately NOT a general HTTP server: no TLS, no chunked
// bodies, no request payloads honoured.  Bind it to localhost or a
// scrape-only interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/server.h"

namespace tdam::net {

struct HttpServerOptions {
  std::string host = "127.0.0.1";  // bind address ("0.0.0.0" for all)
  int port = 0;                    // 0 = ephemeral; see port()
  // Per-connection socket timeout: a scraper that stalls mid-request is
  // dropped after this many seconds so it cannot wedge the accept loop.
  double io_timeout = 2.0;
};

class MetricsHttpServer {
 public:
  // Binds, listens, and starts the accept thread; throws
  // std::invalid_argument on bad options and std::runtime_error on socket
  // failures.  `server` must outlive this object.
  MetricsHttpServer(runtime::AmServer& server, HttpServerOptions options = {});
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // The bound port (resolves option port == 0 to the kernel-assigned one).
  int port() const;

  // HTTP requests served over this object's lifetime (2xx and error
  // responses alike); test hook.
  std::uint64_t requests_served() const;

  // Closes the listener and joins the accept thread.  Idempotent; run by
  // the destructor.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tdam::net
