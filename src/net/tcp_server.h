// Layer 8 transport: an epoll-based non-blocking TCP front door for
// runtime::AmServer.
//
// Thread model (no thread ever blocks another layer's thread):
//
//   acceptor/I-O threads — `io_threads` epoll loops.  Thread 0 owns the
//     listening socket; accepted connections are assigned round-robin
//     across the loops.  I/O threads only read bytes, split/validate
//     frames, and write queued reply bytes — they never call into the
//     engine and never wait on a future.
//   submit thread        — drains decoded requests, calls
//     AmServer::submit / store / clear, and hands each query's future to
//     the completion queue.  Admission backpressure (a kBlock scheduler)
//     therefore stalls this thread, not the sockets.
//   completion thread    — drains the completion queue in FIFO order,
//     waits each future (the AmServer dispatcher always fulfills every
//     promise), encodes the QUERY_REPLY — request_id echoed, trace_id in
//     the reply header, degraded QueryStatus mapped to its WireCode — and
//     appends it to the connection's outbox, waking the owning I/O loop
//     through an eventfd.
//
// Protocol errors are replies, not disconnects: an oversized frame is
// answered with ERROR/kOversizedFrame and its payload discarded from the
// stream; a frame whose payload fails to decode is answered with
// ERROR/kMalformedFrame; both leave the connection serving.  Each
// connection carries its own error counter — a peer exceeding
// `max_protocol_errors` is disconnected after the final error reply
// flushes.  Only an unsynchronizable stream (bad magic / unsupported
// version, where framing itself is lost) closes the connection, again
// after an ERROR reply is flushed.
//
// Graceful shutdown (stop(), also run by the destructor): the listener
// closes and reads stop; the submit thread drains every already-decoded
// request; the completion thread drains every in-flight future; reply
// bytes are flushed to every socket (bounded by drain_timeout); then the
// I/O loops close their connections and exit.  No accepted query is
// silently dropped.
//
// Observability: the server registers instruments in the AmServer's
// MetricsRegistry (exported by the existing Prometheus/JSON scrapers):
// tdam_net_connections / _connections_total, tdam_net_bytes_{in,out}_total,
// tdam_net_frames_{in,out}_total, and tdam_net_protocol_errors_total with a
// per-WireCode `code` label.
//
// Wire-level tracing: when the AmServer's flight recorder is on, every
// QUERY frame's span is seeded at the I/O thread (enqueue base = the
// frame-receipt instant) and stamped across all three thread hops —
// io_recv → decode → submit_queue → [serving stages] → completion_wait →
// encode → io_send — with io_send taken when the reply's last byte reaches
// the kernel.  Such a span is recorded (flight-recorder sampling, plus the
// AmServer's slow-query log regardless of sampling) only at that final
// stamp, so one span reconciles client-observed latency against server
// internals.  A v3 METRICS request returns the whole registry (Prometheus
// text / JSON / trace dump) over the query socket.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/protocol.h"
#include "runtime/server.h"

namespace tdam::net {

struct TcpServerOptions {
  std::string host = "127.0.0.1";  // bind address ("0.0.0.0" for all)
  int port = 0;                    // 0 = ephemeral; see AmTcpServer::port()
  int io_threads = 2;
  // Hard cap on payload_len; larger frames are answered with
  // ERROR/kOversizedFrame and skipped.  Must be positive (the constructor
  // throws std::invalid_argument otherwise).
  int max_frame_bytes = static_cast<int>(kDefaultMaxFrameBytes);
  // Per-connection protocol-error budget before the server hangs up.
  int max_protocol_errors = 16;
  // stop(): seconds to wait for reply bytes to flush before closing.
  double drain_timeout = 5.0;
};

class AmTcpServer {
 public:
  // Binds, listens, and starts the serving threads; throws
  // std::invalid_argument on bad options and std::runtime_error on socket
  // failures.  `server` must outlive this object.
  AmTcpServer(runtime::AmServer& server, TcpServerOptions options = {});
  ~AmTcpServer();

  AmTcpServer(const AmTcpServer&) = delete;
  AmTcpServer& operator=(const AmTcpServer&) = delete;

  // The bound port (resolves option port == 0 to the kernel-assigned one).
  int port() const;
  const TcpServerOptions& options() const;

  // Currently open client connections.
  int connections() const;

  // Graceful shutdown as described above.  Idempotent; run by the
  // destructor.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tdam::net
