// Client side of the Layer-8 wire protocol: a blocking TCP connection that
// speaks the framed protocol in two styles —
//
//  * synchronous  — hello()/query()/store()/clear()/stats() send one request
//    and block until its reply arrives (replies on one connection are
//    ordered, so this is a simple send + recv);
//  * pipelined    — send_query()/send_hello()/… enqueue a request without
//    waiting and return its request_id; recv() blocks for the next reply
//    frame, which the caller correlates by Reply::request_id.  Keeping many
//    queries in flight on one connection is how loadgen reaches high QPS
//    without a thread per request.
//
// Degraded queries are normal replies: a query bounced by admission control
// arrives as Reply{type=kQueryReply, code=kRejected}, not an exception.
// Only transport failures (connect/EOF/socket errors) throw
// std::runtime_error; undecodable reply bytes throw ProtocolError.
//
// send_raw() writes arbitrary bytes to the socket — the escape hatch the
// protocol-robustness tests use to aim malformed/oversized/garbage frames at
// a live server.
//
// AmClient is NOT thread-safe; use one instance per thread (loadgen pairs a
// sender and a receiver per connection, which is safe: the socket is
// full-duplex and send_* only touches the write side, recv only the read
// side — see the *_split notes on recv()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace tdam::net {

class AmClient {
 public:
  // Connects (blocking) and enables TCP_NODELAY; throws std::runtime_error
  // on failure.  `protocol_version` is the dialect this client stamps on
  // every request — the server answers each request in the same dialect, so
  // passing 1 here exercises the legacy integer-score encoding end to end
  // (the compatibility path the cross-version tests pin down).  Out-of-range
  // versions throw std::invalid_argument.
  AmClient(const std::string& host, int port,
           std::uint8_t protocol_version = kProtocolVersion);
  ~AmClient();

  AmClient(const AmClient&) = delete;
  AmClient& operator=(const AmClient&) = delete;
  AmClient(AmClient&& other) noexcept;
  AmClient& operator=(AmClient&&) = delete;

  // One decoded reply frame.  `type` selects which payload member is
  // meaningful; request_id echoes the request, trace_id is non-zero only on
  // query replies from a tracing server.
  struct Reply {
    MsgType type = MsgType::kError;
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;
    HelloReply hello;
    QueryReply query;
    StoreReply store;
    StoreBatchReply store_batch;
    ClearReply clear;
    StatsReply stats;
    MetricsReply metrics;
    ErrorReply error;
  };

  // --- synchronous calls (send + wait for the matching reply) -------------

  HelloReply hello();
  // deadline_us == 0 means no deadline.  The reply's code carries the
  // admission/deadline outcome; entries are present iff code == kOk.
  Reply query(const std::vector<std::uint16_t>& digits, std::uint32_t k,
              std::uint32_t deadline_us = 0);
  Reply store(const std::vector<std::uint16_t>& digits);
  // Stores digits.size()/digits_per_row rows in one frame; digits is
  // row-major.  The reply reports how many rows landed and the id of the
  // first one (consecutive only under a single-writer protocol — concurrent
  // writers interleave ids).
  Reply store_batch(const std::vector<std::uint16_t>& digits,
                    std::uint32_t digits_per_row);
  Reply clear();
  StatsReply stats();
  // Full observability export over the query socket (v3+): Prometheus
  // text, registry JSON, or the trace/slow-query dump — the same bytes the
  // embedded HTTP listener serves.  A v1/v2 client calling this gets the
  // server's ERROR/kUnknownType back as a ProtocolError.
  MetricsReply metrics(MetricsFormat format = MetricsFormat::kPrometheus);

  // --- pipelined calls ----------------------------------------------------

  // Enqueue without waiting; returns the request_id to correlate with.
  std::uint64_t send_hello();
  std::uint64_t send_query(const std::vector<std::uint16_t>& digits,
                           std::uint32_t k, std::uint32_t deadline_us = 0);
  std::uint64_t send_store(const std::vector<std::uint16_t>& digits);
  std::uint64_t send_store_batch(const std::vector<std::uint16_t>& digits,
                                 std::uint32_t digits_per_row);
  std::uint64_t send_stats();
  std::uint64_t send_metrics(MetricsFormat format = MetricsFormat::kPrometheus);

  // Blocks for the next reply frame in arrival order.  Returns false on
  // clean EOF (server hung up with nothing buffered); throws on transport
  // errors, mid-frame EOF, or undecodable replies.  Safe to run concurrently
  // with send_* from ONE other thread (full-duplex split); never run two
  // concurrent recv() or two concurrent send_* calls.
  bool recv(Reply& out);

  // Writes raw bytes verbatim (tests: malformed frames, bad magic, ...).
  void send_raw(const std::vector<std::uint8_t>& bytes);

  // Half-close the write side: the server sees EOF, flushes replies, and
  // closes; recv() then drains to a clean EOF.
  void shutdown_write();

  int fd() const { return fd_; }
  std::uint8_t protocol_version() const { return version_; }

 private:
  std::uint64_t next_id() { return next_request_id_++; }
  void write_all(const std::uint8_t* data, std::size_t size);
  // Returns false on EOF at a frame boundary; throws mid-frame.
  bool read_frame(FrameHeader& header, std::vector<std::uint8_t>& payload);
  Reply wait_for(std::uint64_t request_id);

  int fd_ = -1;
  std::uint8_t version_ = kProtocolVersion;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace tdam::net
