#include "hdc/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace tdam::hdc {

namespace {

// Digit-Hamming distance between a sample's digits and a centroid row.
int digit_distance(const int* a, const int* b, int dims) {
  int d = 0;
  for (int j = 0; j < dims; ++j)
    if (a[j] != b[j]) ++d;
  return d;
}

}  // namespace

ClusterResult cluster_hypervectors(std::span<const float> encodings,
                                   std::size_t n, int dims,
                                   const ClusterOptions& options) {
  if (options.clusters < 2 || options.bits < 1 || options.max_iterations < 1)
    throw std::invalid_argument("cluster_hypervectors: bad options");
  if (n < static_cast<std::size_t>(options.clusters))
    throw std::invalid_argument("cluster_hypervectors: too few samples");
  const auto d = static_cast<std::size_t>(dims);
  if (encodings.size() != n * d)
    throw std::invalid_argument("cluster_hypervectors: matrix shape");

  // Shared quantizer fitted on the pooled encoding values so samples and
  // centroids live on the same digit grid.
  const EqualAreaQuantizer quantizer(encodings, options.bits);
  std::vector<int> sample_digits(n * d);
  for (std::size_t i = 0; i < n * d; ++i)
    sample_digits[i] = quantizer.quantize(encodings[i]);

  const int k = options.clusters;
  Rng rng(options.seed);

  // Init: k distinct random samples as centroids (float domain).
  std::vector<float> centroids(static_cast<std::size_t>(k) * d);
  std::vector<std::size_t> picks;
  while (picks.size() < static_cast<std::size_t>(k)) {
    const auto cand = static_cast<std::size_t>(rng.uniform_below(n));
    if (std::find(picks.begin(), picks.end(), cand) == picks.end())
      picks.push_back(cand);
  }
  for (int c = 0; c < k; ++c)
    std::copy_n(encodings.data() + picks[static_cast<std::size_t>(c)] * d, d,
                centroids.data() + static_cast<std::size_t>(c) * d);

  ClusterResult result;
  result.assignment.assign(n, -1);
  std::vector<int> centroid_digits(static_cast<std::size_t>(k) * d);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // Quantize centroids onto the AM digit grid.
    for (std::size_t i = 0; i < centroid_digits.size(); ++i)
      centroid_digits[i] = quantizer.quantize(centroids[i]);

    // Assignment step (the AM operation: one parallel search per sample).
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      int best_dist = dims + 1;
      for (int c = 0; c < k; ++c) {
        const int dist = digit_distance(
            sample_digits.data() + i * d,
            centroid_digits.data() + static_cast<std::size_t>(c) * d, dims);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      ++result.am_searches;
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }

    // Update step: float-domain means (host side).
    std::vector<double> sums(static_cast<std::size_t>(k) * d, 0.0);
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      counts[static_cast<std::size_t>(c)]++;
      for (std::size_t j = 0; j < d; ++j)
        sums[static_cast<std::size_t>(c) * d + j] += encodings[i * d + j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) {
        // Dead cluster: reseed from a random sample.
        const auto pick = static_cast<std::size_t>(rng.uniform_below(n));
        std::copy_n(encodings.data() + pick * d, d,
                    centroids.data() + static_cast<std::size_t>(c) * d);
        continue;
      }
      for (std::size_t j = 0; j < d; ++j)
        centroids[static_cast<std::size_t>(c) * d + j] = static_cast<float>(
            sums[static_cast<std::size_t>(c) * d + j] /
            counts[static_cast<std::size_t>(c)]);
    }
  }

  result.centroid_digits.resize(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c)
    result.centroid_digits[static_cast<std::size_t>(c)].assign(
        centroid_digits.begin() + static_cast<long>(c) * dims,
        centroid_digits.begin() + static_cast<long>(c + 1) * dims);
  return result;
}

double cluster_purity(std::span<const int> assignment,
                      std::span<const int> labels, int clusters,
                      int num_classes) {
  if (assignment.size() != labels.size() || assignment.empty())
    throw std::invalid_argument("cluster_purity: bad inputs");
  std::vector<int> counts(static_cast<std::size_t>(clusters) *
                              static_cast<std::size_t>(num_classes),
                          0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= clusters ||
        labels[i] < 0 || labels[i] >= num_classes)
      throw std::invalid_argument("cluster_purity: out-of-range entry");
    counts[static_cast<std::size_t>(assignment[i]) *
               static_cast<std::size_t>(num_classes) +
           static_cast<std::size_t>(labels[i])]++;
  }
  long correct = 0;
  for (int c = 0; c < clusters; ++c) {
    int best = 0;
    for (int y = 0; y < num_classes; ++y)
      best = std::max(best,
                      counts[static_cast<std::size_t>(c) *
                                 static_cast<std::size_t>(num_classes) +
                             static_cast<std::size_t>(y)]);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(assignment.size());
}

}  // namespace tdam::hdc
