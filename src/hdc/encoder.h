// Nonlinear random-projection hypervector encoder (the OnlineHD encoding the
// paper's case study builds on): phi_d(x) = cos(w_d . x + b_d), with w_d a
// Gaussian random projection row and b_d a uniform phase.
//
// Dimensions are i.i.d., so an encoder realised at `max_dims` yields a valid
// lower-dimensional encoding by truncation — Fig. 7's dimensionality sweep
// encodes once at 10240 and slices.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/dataset.h"
#include "util/rng.h"

namespace tdam::hdc {

class Encoder {
 public:
  Encoder(int num_features, int max_dims, Rng& rng, double bandwidth = 1.0);

  int num_features() const { return num_features_; }
  int max_dims() const { return max_dims_; }

  // Encodes one sample into the first `dims` hypervector components.
  std::vector<float> encode(const float* sample, int dims) const;

  // Encodes a whole dataset (row-major [size x dims]).
  std::vector<float> encode_dataset(const Dataset& ds, int dims) const;

 private:
  int num_features_;
  int max_dims_;
  std::vector<float> weights_;  // [max_dims x num_features]
  std::vector<float> bias_;     // [max_dims]
};

}  // namespace tdam::hdc
