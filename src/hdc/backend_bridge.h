// Routing HDC digit vectors onto any similarity backend.
//
// A quantized HDC classifier is just `num_classes` digit rows plus a
// nearest-row rule — exactly what core::SimilarityBackend stores and
// answers.  These helpers load a QuantizedModel's class hypervectors into a
// backend (row id == class label) and classify queries through it, so the
// same classifier runs on the TD-AM model, the digital comparator, the CAM
// crossbar or the software reference without hdc knowing which.
#pragma once

#include <span>

#include "core/backend.h"
#include "hdc/model.h"

namespace tdam::hdc {

// Stores every class hypervector into `backend` in label order, so the
// backend row id IS the class label.  The backend must be empty and match
// the model's dims/levels; throws std::invalid_argument otherwise.
void load_classes(const QuantizedModel& model,
                  core::SimilarityBackend& backend);

// Nearest class label for pre-quantized query digits under the backend's
// digit metric (ties break toward the lower label, matching
// QuantizedModel::predict_digits for the digit-match kernel).  Returns -1 on
// an empty backend.
int classify(const core::SimilarityBackend& backend,
             std::span<const int> query_digits);

}  // namespace tdam::hdc
