// Classification datasets for the HDC case study (Fig. 7/8).
//
// The paper evaluates on ISOLET (voice, 617 features / 26 classes), UCIHAR
// (activity recognition, 561 / 6) and FACE (face detection, 608 / 2), all
// fetched from UCI / the authors' framework.  This environment has no
// network access, so we substitute synthetic Gaussian-mixture datasets with
// the same shapes and with class separation calibrated so the full-precision
// HDC reference lands near the paper's accuracy (~95 %).  Fig. 7's claims
// are about the relative behaviour of quantized models across dimensionality,
// which depends on hyperdimensional geometry rather than the specific data;
// DESIGN.md documents the substitution.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tdam::hdc {

class Dataset {
 public:
  Dataset(int num_features, int num_classes);

  int num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }
  std::size_t size() const { return labels_.size(); }

  void add_sample(std::vector<float> features, int label);

  // Row view of sample `i`.
  const float* sample(std::size_t i) const;
  int label(std::size_t i) const { return labels_.at(i); }

  // Z-score normalisation fitted on this set; apply_normalization carries a
  // training set's statistics onto the test set.
  struct Normalization {
    std::vector<float> mean;
    std::vector<float> inv_std;
  };
  Normalization fit_normalization() const;
  void apply_normalization(const Normalization& norm);

 private:
  int num_features_;
  int num_classes_;
  std::vector<float> data_;  // row-major [size x num_features]
  std::vector<int> labels_;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

// Named synthetic generators with the paper's dataset shapes.  `train_n` /
// `test_n` default to laptop-scale sizes (the UCI originals are a few
// thousand samples; shrink or grow freely — accuracy saturates well below
// the defaults).
TrainTestSplit make_isolet_like(Rng& rng, int train_n = 2000, int test_n = 600);
TrainTestSplit make_ucihar_like(Rng& rng, int train_n = 2000, int test_n = 600);
TrainTestSplit make_face_like(Rng& rng, int train_n = 2000, int test_n = 600);

// Generic Gaussian-mixture generator underlying the named ones.
// `class_separation` scales the distance between class centroids in feature
// space; `intra_noise` the within-class spread; `feature_correlation` mixes
// a shared low-rank structure into all classes (making features correlated,
// as in real sensor data).
TrainTestSplit make_gaussian_mixture(Rng& rng, int features, int classes,
                                     int train_n, int test_n,
                                     double class_separation,
                                     double intra_noise,
                                     double feature_correlation);

}  // namespace tdam::hdc
