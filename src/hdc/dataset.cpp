#include "hdc/dataset.h"

#include <cmath>
#include <stdexcept>

namespace tdam::hdc {

Dataset::Dataset(int num_features, int num_classes)
    : num_features_(num_features), num_classes_(num_classes) {
  if (num_features < 1 || num_classes < 2)
    throw std::invalid_argument("Dataset: need >= 1 feature and >= 2 classes");
}

void Dataset::add_sample(std::vector<float> features, int label) {
  if (static_cast<int>(features.size()) != num_features_)
    throw std::invalid_argument("Dataset::add_sample: feature width mismatch");
  if (label < 0 || label >= num_classes_)
    throw std::invalid_argument("Dataset::add_sample: label out of range");
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

const float* Dataset::sample(std::size_t i) const {
  if (i >= labels_.size()) throw std::out_of_range("Dataset::sample");
  return data_.data() + i * static_cast<std::size_t>(num_features_);
}

Dataset::Normalization Dataset::fit_normalization() const {
  Normalization norm;
  const auto f = static_cast<std::size_t>(num_features_);
  norm.mean.assign(f, 0.0f);
  norm.inv_std.assign(f, 1.0f);
  if (labels_.empty()) return norm;
  const auto n = labels_.size();
  std::vector<double> mean(f, 0.0), m2(f, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = sample(i);
    for (std::size_t j = 0; j < f; ++j) mean[j] += row[j];
  }
  for (std::size_t j = 0; j < f; ++j) mean[j] /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = sample(i);
    for (std::size_t j = 0; j < f; ++j) {
      const double d = row[j] - mean[j];
      m2[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < f; ++j) {
    const double var = m2[j] / static_cast<double>(n);
    norm.mean[j] = static_cast<float>(mean[j]);
    norm.inv_std[j] = static_cast<float>(var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0);
  }
  return norm;
}

void Dataset::apply_normalization(const Normalization& norm) {
  const auto f = static_cast<std::size_t>(num_features_);
  if (norm.mean.size() != f || norm.inv_std.size() != f)
    throw std::invalid_argument("Dataset::apply_normalization: width mismatch");
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    float* row = data_.data() + i * f;
    for (std::size_t j = 0; j < f; ++j)
      row[j] = (row[j] - norm.mean[j]) * norm.inv_std[j];
  }
}

TrainTestSplit make_gaussian_mixture(Rng& rng, int features, int classes,
                                     int train_n, int test_n,
                                     double class_separation,
                                     double intra_noise,
                                     double feature_correlation) {
  if (train_n < classes || test_n < classes)
    throw std::invalid_argument("make_gaussian_mixture: too few samples");
  const auto f = static_cast<std::size_t>(features);

  // Class centroids plus a shared low-rank component that correlates
  // features across all classes (rank 8 latent structure).
  constexpr int kRank = 8;
  std::vector<std::vector<float>> centroids(static_cast<std::size_t>(classes));
  for (auto& c : centroids) {
    c.resize(f);
    for (auto& v : c)
      v = static_cast<float>(rng.gaussian(0.0, class_separation));
  }
  std::vector<float> mixing(f * kRank);
  for (auto& v : mixing) v = static_cast<float>(rng.gaussian(0.0, 1.0));

  auto fill = [&](Dataset& ds, int n) {
    for (int i = 0; i < n; ++i) {
      const int label = static_cast<int>(rng.uniform_below(
          static_cast<std::uint64_t>(classes)));
      std::vector<float> row(f);
      float latent[kRank];
      for (auto& l : latent)
        l = static_cast<float>(rng.gaussian(0.0, feature_correlation));
      const auto& c = centroids[static_cast<std::size_t>(label)];
      for (std::size_t j = 0; j < f; ++j) {
        float shared = 0.0f;
        for (int r = 0; r < kRank; ++r)
          shared += mixing[j * kRank + static_cast<std::size_t>(r)] * latent[r];
        row[j] = c[j] + shared +
                 static_cast<float>(rng.gaussian(0.0, intra_noise));
      }
      ds.add_sample(std::move(row), label);
    }
  };

  TrainTestSplit split{Dataset(features, classes), Dataset(features, classes)};
  fill(split.train, train_n);
  fill(split.test, test_n);

  const auto norm = split.train.fit_normalization();
  split.train.apply_normalization(norm);
  split.test.apply_normalization(norm);
  return split;
}

TrainTestSplit make_isolet_like(Rng& rng, int train_n, int test_n) {
  // 26 spoken letters: many moderately-separated classes.
  return make_gaussian_mixture(rng, 617, 26, train_n, test_n,
                               /*class_separation=*/0.55, /*intra_noise=*/1.0,
                               /*feature_correlation=*/0.35);
}

TrainTestSplit make_ucihar_like(Rng& rng, int train_n, int test_n) {
  // 6 activities: fewer classes but strongly correlated inertial features
  // and two near-overlapping class pairs (sitting/standing analogue).
  Rng local = rng.fork(0x0ca7);
  TrainTestSplit split = make_gaussian_mixture(
      local, 561, 6, train_n, test_n,
      /*class_separation=*/0.50, /*intra_noise=*/1.0,
      /*feature_correlation=*/0.8);
  return split;
}

TrainTestSplit make_face_like(Rng& rng, int train_n, int test_n) {
  // Binary face/non-face: well-separated two-class problem.
  return make_gaussian_mixture(rng, 608, 2, train_n, test_n,
                               /*class_separation=*/0.28, /*intra_noise=*/1.0,
                               /*feature_correlation=*/0.45);
}

}  // namespace tdam::hdc
