// HDC classifier: float (full-precision) training in the OnlineHD style and
// equal-area quantized models whose inference is exactly the digit-match
// similarity the TD-AM computes in hardware.
#pragma once

#include <span>
#include <vector>

#include "hdc/quantizer.h"

namespace tdam::hdc {

struct TrainOptions {
  int epochs = 8;
  float learning_rate = 0.05f;
};

// Full-precision (the paper's "32-bit reference") class-hypervector model.
class HdcModel {
 public:
  HdcModel(int num_classes, int dims);

  int num_classes() const { return num_classes_; }
  int dims() const { return dims_; }

  // Trains on pre-encoded hypervectors (row-major [n x dims]): initial
  // class bundling followed by OnlineHD-style error-driven refinement.
  void train(std::span<const float> encodings, std::span<const int> labels,
             const TrainOptions& options = {});

  // Cosine-similarity prediction on one encoded query.
  int predict(const float* encoding) const;

  // Accuracy over an encoded set.
  double evaluate(std::span<const float> encodings,
                  std::span<const int> labels) const;

  std::span<const float> class_vector(int k) const;

  // Error-driven update primitive: class_vector(k) += scale * encoding
  // (norms maintained).  Exposed for online learners that make their
  // prediction elsewhere (e.g. on the AM) and push corrections back.
  void apply_update(int k, const float* encoding, float scale);

 private:
  double cosine(const float* enc, int k, double enc_norm) const;

  int num_classes_;
  int dims_;
  std::vector<float> classes_;      // [num_classes x dims]
  std::vector<double> norms_sq_;    // per-class squared norms
};

// How a quantized model scores a query against a class row.
//
//  * kDigitMatch — count of exactly-matching digits: the similarity the
//    TD-AM measures natively (one delay LSB per mismatched cell).  Per-dim
//    discriminability of this kernel FALLS as precision grows (matches get
//    rarer), an effect we analyse in EXPERIMENTS.md.
//  * kQuantizedCosine — cosine over block-centroid reconstructions: the
//    software evaluation the paper's Fig. 7 accuracy study corresponds to
//    (higher precision monotonically approaches the 32-bit reference).
//  * kL1Digits — negative Manhattan distance over digit indices; what the
//    AM computes when each n-bit value is thermometer-coded across 2^n - 1
//    binary cells (exact-match Hamming over thermometer codes == L1).
enum class SimilarityKernel { kDigitMatch, kQuantizedCosine, kL1Digits };

// n-bit model: class hypervectors standardized and quantized into 2^n
// equal-probability blocks; queries pass through the same pipeline and
// similarity is evaluated with a configurable kernel (see above).
class QuantizedModel {
 public:
  QuantizedModel(const HdcModel& model, int bits,
                 SimilarityKernel kernel = SimilarityKernel::kDigitMatch);

  SimilarityKernel kernel() const { return kernel_; }

  int bits() const { return quantizer_.bits(); }
  int dims() const { return dims_; }
  int num_classes() const { return num_classes_; }

  // Digit row stored in one AM chain group.
  std::span<const int> class_digits(int k) const;

  // Quantizes an encoded query into AM search digits.
  std::vector<int> quantize_query(const float* encoding) const;

  // Digit-match (negated Hamming) classification of an encoded query.
  int predict(const float* encoding) const;
  // Same, given pre-quantized digits (e.g. replayed through an AM model).
  int predict_digits(std::span<const int> query_digits) const;

  double evaluate(std::span<const float> encodings,
                  std::span<const int> labels) const;

  const EqualAreaQuantizer& quantizer() const { return quantizer_; }

 private:
  static std::vector<float> standardize(std::span<const float> v);
  double score(std::span<const int> query_digits, int k) const;

  int num_classes_;
  int dims_;
  SimilarityKernel kernel_;
  EqualAreaQuantizer quantizer_;
  std::vector<int> digits_;  // [num_classes x dims]
};

}  // namespace tdam::hdc
