#include "hdc/quantizer.h"

#include <algorithm>
#include <stdexcept>

namespace tdam::hdc {

EqualAreaQuantizer::EqualAreaQuantizer(std::span<const float> values, int bits)
    : bits_(bits) {
  if (bits < 1 || bits > 8)
    throw std::invalid_argument("EqualAreaQuantizer: bits must be in [1,8]");
  if (values.size() < static_cast<std::size_t>(levels()))
    throw std::invalid_argument("EqualAreaQuantizer: too few fit values");

  std::vector<float> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const int l = levels();

  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    return static_cast<float>(sorted[lo] +
                              frac * (sorted[hi] - sorted[lo]));
  };

  boundaries_.reserve(static_cast<std::size_t>(l - 1));
  for (int k = 1; k < l; ++k)
    boundaries_.push_back(quantile(static_cast<double>(k) / l));
  centroids_.reserve(static_cast<std::size_t>(l));
  for (int k = 0; k < l; ++k)
    centroids_.push_back(quantile((static_cast<double>(k) + 0.5) / l));
}

int EqualAreaQuantizer::quantize(float value) const {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return static_cast<int>(it - boundaries_.begin());
}

std::vector<int> EqualAreaQuantizer::quantize_all(
    std::span<const float> values) const {
  std::vector<int> out;
  out.reserve(values.size());
  for (float v : values) out.push_back(quantize(v));
  return out;
}

float EqualAreaQuantizer::reconstruct(int level) const {
  if (level < 0 || level >= levels())
    throw std::out_of_range("EqualAreaQuantizer::reconstruct");
  return centroids_[static_cast<std::size_t>(level)];
}

}  // namespace tdam::hdc
