#include "hdc/model.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace tdam::hdc {

HdcModel::HdcModel(int num_classes, int dims)
    : num_classes_(num_classes), dims_(dims) {
  if (num_classes < 2 || dims < 1)
    throw std::invalid_argument("HdcModel: bad dimensions");
  classes_.assign(static_cast<std::size_t>(num_classes) *
                      static_cast<std::size_t>(dims),
                  0.0f);
  norms_sq_.assign(static_cast<std::size_t>(num_classes), 0.0);
}

std::span<const float> HdcModel::class_vector(int k) const {
  if (k < 0 || k >= num_classes_)
    throw std::out_of_range("HdcModel::class_vector");
  return {classes_.data() +
              static_cast<std::size_t>(k) * static_cast<std::size_t>(dims_),
          static_cast<std::size_t>(dims_)};
}

void HdcModel::apply_update(int k, const float* encoding, float scale) {
  if (k < 0 || k >= num_classes_)
    throw std::out_of_range("HdcModel::apply_update");
  const auto d = static_cast<std::size_t>(dims_);
  float* c = classes_.data() + static_cast<std::size_t>(k) * d;
  double dot = 0.0, enc_sq = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    dot += static_cast<double>(c[j]) * encoding[j];
    enc_sq += static_cast<double>(encoding[j]) * encoding[j];
    c[j] += scale * encoding[j];
  }
  norms_sq_[static_cast<std::size_t>(k)] +=
      2.0 * static_cast<double>(scale) * dot +
      static_cast<double>(scale) * static_cast<double>(scale) * enc_sq;
}

double HdcModel::cosine(const float* enc, int k, double enc_norm) const {
  const float* c = classes_.data() +
                   static_cast<std::size_t>(k) * static_cast<std::size_t>(dims_);
  double dot = 0.0;
  for (int j = 0; j < dims_; ++j) dot += static_cast<double>(c[j]) * enc[j];
  const double cn = std::sqrt(norms_sq_[static_cast<std::size_t>(k)]);
  if (cn <= 0.0 || enc_norm <= 0.0) return 0.0;
  return dot / (cn * enc_norm);
}

void HdcModel::train(std::span<const float> encodings,
                     std::span<const int> labels, const TrainOptions& options) {
  const auto d = static_cast<std::size_t>(dims_);
  if (encodings.size() != labels.size() * d)
    throw std::invalid_argument("HdcModel::train: encoding matrix shape");

  // Initial bundling: each class vector is the sum of its samples.
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const float* enc = encodings.data() + i * d;
    float* c = classes_.data() + static_cast<std::size_t>(labels[i]) * d;
    for (std::size_t j = 0; j < d; ++j) c[j] += enc[j];
  }
  for (int k = 0; k < num_classes_; ++k) {
    double ns = 0.0;
    const float* c = classes_.data() + static_cast<std::size_t>(k) * d;
    for (std::size_t j = 0; j < d; ++j)
      ns += static_cast<double>(c[j]) * c[j];
    norms_sq_[static_cast<std::size_t>(k)] = ns;
  }

  // OnlineHD-style refinement: pull misclassified samples into their class
  // vector and push them out of the winning wrong class.  Squared norms are
  // maintained incrementally (the dot products are already available).
  const float lr = options.learning_rate;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const float* enc = encodings.data() + i * d;
      double enc_sq = 0.0;
      for (std::size_t j = 0; j < d; ++j)
        enc_sq += static_cast<double>(enc[j]) * enc[j];
      const double enc_norm = std::sqrt(enc_sq);

      int best = 0;
      double best_sim = -2.0;
      std::vector<double> dots(static_cast<std::size_t>(num_classes_));
      for (int k = 0; k < num_classes_; ++k) {
        const float* c = classes_.data() + static_cast<std::size_t>(k) * d;
        double dot = 0.0;
        for (std::size_t j = 0; j < d; ++j)
          dot += static_cast<double>(c[j]) * enc[j];
        dots[static_cast<std::size_t>(k)] = dot;
        const double cn = std::sqrt(norms_sq_[static_cast<std::size_t>(k)]);
        const double sim = (cn > 0.0) ? dot / (cn * enc_norm) : 0.0;
        if (sim > best_sim) {
          best_sim = sim;
          best = k;
        }
      }
      const int y = labels[i];
      if (best == y) continue;
      float* cy = classes_.data() + static_cast<std::size_t>(y) * d;
      float* cb = classes_.data() + static_cast<std::size_t>(best) * d;
      for (std::size_t j = 0; j < d; ++j) {
        cy[j] += lr * enc[j];
        cb[j] -= lr * enc[j];
      }
      norms_sq_[static_cast<std::size_t>(y)] +=
          2.0 * lr * dots[static_cast<std::size_t>(y)] + lr * lr * enc_sq;
      norms_sq_[static_cast<std::size_t>(best)] -=
          2.0 * lr * dots[static_cast<std::size_t>(best)] - lr * lr * enc_sq;
    }
  }
}

int HdcModel::predict(const float* encoding) const {
  double enc_sq = 0.0;
  for (int j = 0; j < dims_; ++j)
    enc_sq += static_cast<double>(encoding[j]) * encoding[j];
  const double enc_norm = std::sqrt(enc_sq);
  int best = 0;
  double best_sim = -2.0;
  for (int k = 0; k < num_classes_; ++k) {
    const double sim = cosine(encoding, k, enc_norm);
    if (sim > best_sim) {
      best_sim = sim;
      best = k;
    }
  }
  return best;
}

double HdcModel::evaluate(std::span<const float> encodings,
                          std::span<const int> labels) const {
  const auto d = static_cast<std::size_t>(dims_);
  if (encodings.size() != labels.size() * d)
    throw std::invalid_argument("HdcModel::evaluate: encoding matrix shape");
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (predict(encodings.data() + i * d) == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

std::vector<float> QuantizedModel::standardize(std::span<const float> v) {
  double mean = 0.0;
  for (float x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (float x : v) {
    const double dxm = x - mean;
    var += dxm * dxm;
  }
  var /= static_cast<double>(v.size());
  const double inv = var > 1e-20 ? 1.0 / std::sqrt(var) : 1.0;
  std::vector<float> out(v.size());
  for (std::size_t j = 0; j < v.size(); ++j)
    out[j] = static_cast<float>((v[j] - mean) * inv);
  return out;
}

namespace {
// Pools the standardized class vectors so the quantizer sees the value
// population the blocks must cover.
std::vector<float> pooled_standardized(const HdcModel& model) {
  std::vector<float> pool;
  pool.reserve(static_cast<std::size_t>(model.num_classes()) *
               static_cast<std::size_t>(model.dims()));
  for (int k = 0; k < model.num_classes(); ++k) {
    double mean = 0.0, var = 0.0;
    const auto v = model.class_vector(k);
    for (float x : v) mean += x;
    mean /= static_cast<double>(v.size());
    for (float x : v) {
      const double dxm = x - mean;
      var += dxm * dxm;
    }
    var /= static_cast<double>(v.size());
    const double inv = var > 1e-20 ? 1.0 / std::sqrt(var) : 1.0;
    for (float x : v)
      pool.push_back(static_cast<float>((x - mean) * inv));
  }
  return pool;
}
}  // namespace

QuantizedModel::QuantizedModel(const HdcModel& model, int bits,
                               SimilarityKernel kernel)
    : num_classes_(model.num_classes()),
      dims_(model.dims()),
      kernel_(kernel),
      quantizer_(pooled_standardized(model), bits) {
  digits_.reserve(static_cast<std::size_t>(num_classes_) *
                  static_cast<std::size_t>(dims_));
  for (int k = 0; k < num_classes_; ++k) {
    const auto std_vec = standardize(model.class_vector(k));
    for (float x : std_vec) digits_.push_back(quantizer_.quantize(x));
  }
}

std::span<const int> QuantizedModel::class_digits(int k) const {
  if (k < 0 || k >= num_classes_)
    throw std::out_of_range("QuantizedModel::class_digits");
  return {digits_.data() +
              static_cast<std::size_t>(k) * static_cast<std::size_t>(dims_),
          static_cast<std::size_t>(dims_)};
}

std::vector<int> QuantizedModel::quantize_query(const float* encoding) const {
  const auto std_vec =
      standardize({encoding, static_cast<std::size_t>(dims_)});
  std::vector<int> out;
  out.reserve(std_vec.size());
  for (float x : std_vec) out.push_back(quantizer_.quantize(x));
  return out;
}

double QuantizedModel::score(std::span<const int> query_digits, int k) const {
  const int* c = digits_.data() +
                 static_cast<std::size_t>(k) * static_cast<std::size_t>(dims_);
  switch (kernel_) {
    case SimilarityKernel::kDigitMatch: {
      int matches = 0;
      for (int j = 0; j < dims_; ++j)
        if (c[j] == query_digits[static_cast<std::size_t>(j)]) ++matches;
      return matches;
    }
    case SimilarityKernel::kL1Digits: {
      long dist = 0;
      for (int j = 0; j < dims_; ++j)
        dist += std::abs(c[j] - query_digits[static_cast<std::size_t>(j)]);
      return -static_cast<double>(dist);
    }
    case SimilarityKernel::kQuantizedCosine: {
      double dot = 0.0, nc = 0.0, nq = 0.0;
      for (int j = 0; j < dims_; ++j) {
        const double vc = quantizer_.reconstruct(c[j]);
        const double vq =
            quantizer_.reconstruct(query_digits[static_cast<std::size_t>(j)]);
        dot += vc * vq;
        nc += vc * vc;
        nq += vq * vq;
      }
      if (nc <= 0.0 || nq <= 0.0) return 0.0;
      return dot / std::sqrt(nc * nq);
    }
  }
  return 0.0;
}

int QuantizedModel::predict_digits(std::span<const int> query_digits) const {
  if (static_cast<int>(query_digits.size()) != dims_)
    throw std::invalid_argument("QuantizedModel::predict_digits: size");
  int best = 0;
  double best_score = -1e300;
  for (int k = 0; k < num_classes_; ++k) {
    const double s = score(query_digits, k);
    if (s > best_score) {
      best_score = s;
      best = k;
    }
  }
  return best;
}

int QuantizedModel::predict(const float* encoding) const {
  const auto digits = quantize_query(encoding);
  return predict_digits(digits);
}

double QuantizedModel::evaluate(std::span<const float> encodings,
                                std::span<const int> labels) const {
  const auto d = static_cast<std::size_t>(dims_);
  if (encodings.size() != labels.size() * d)
    throw std::invalid_argument("QuantizedModel::evaluate: shape");
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (predict(encodings.data() + i * d) == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace tdam::hdc
