#include "hdc/backend_bridge.h"

#include <stdexcept>

namespace tdam::hdc {

void load_classes(const QuantizedModel& model,
                  core::SimilarityBackend& backend) {
  if (backend.rows() != 0)
    throw std::invalid_argument("load_classes: backend is not empty");
  if (backend.stages() != model.dims())
    throw std::invalid_argument("load_classes: backend width != model dims");
  if (backend.levels() < model.quantizer().levels())
    throw std::invalid_argument(
        "load_classes: backend alphabet too small for the model's digits");
  for (int c = 0; c < model.num_classes(); ++c)
    backend.store(model.class_digits(c));
}

int classify(const core::SimilarityBackend& backend,
             std::span<const int> query_digits) {
  if (backend.rows() == 0) return -1;
  const auto top = backend.search_topk(query_digits, 1);
  return top.entries.empty() ? -1 : top.entries.front().row;
}

}  // namespace tdam::hdc
