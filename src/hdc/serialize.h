// Serialization of trained models and AM contents.
//
// A deployed TD-AM system trains once (host) and programs many arrays
// (edge), so the quantized class digits and the encoder seed must round-trip
// through storage.  Format: a small explicit text header followed by
// whitespace-separated numbers — diff-able, endian-safe, and versioned.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hdc/model.h"

namespace tdam::hdc {

// Portable snapshot of a quantized model: everything an array controller
// needs to program chains and quantize queries.
struct QuantizedSnapshot {
  int version = 1;
  int bits = 0;
  int dims = 0;
  int num_classes = 0;
  SimilarityKernel kernel = SimilarityKernel::kDigitMatch;
  std::vector<float> boundaries;       // quantizer cut points
  std::vector<float> centroids;        // block representatives
  std::vector<int> digits;             // [num_classes x dims]

  static QuantizedSnapshot from_model(const QuantizedModel& model);

  // Digit-domain prediction identical to QuantizedModel::predict_digits.
  int predict_digits(std::span<const int> query_digits) const;
};

void save_snapshot(const QuantizedSnapshot& snap, std::ostream& out);
QuantizedSnapshot load_snapshot(std::istream& in);  // throws on malformed input

void save_snapshot_file(const QuantizedSnapshot& snap, const std::string& path);
QuantizedSnapshot load_snapshot_file(const std::string& path);

}  // namespace tdam::hdc
