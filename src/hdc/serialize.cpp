#include "hdc/serialize.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tdam::hdc {

namespace {
constexpr const char* kMagic = "tdam-quantized-model";

int kernel_code(SimilarityKernel k) {
  switch (k) {
    case SimilarityKernel::kDigitMatch:
      return 0;
    case SimilarityKernel::kQuantizedCosine:
      return 1;
    case SimilarityKernel::kL1Digits:
      return 2;
  }
  return 0;
}

SimilarityKernel kernel_from_code(int code) {
  switch (code) {
    case 0:
      return SimilarityKernel::kDigitMatch;
    case 1:
      return SimilarityKernel::kQuantizedCosine;
    case 2:
      return SimilarityKernel::kL1Digits;
    default:
      throw std::runtime_error("load_snapshot: unknown kernel code");
  }
}
}  // namespace

QuantizedSnapshot QuantizedSnapshot::from_model(const QuantizedModel& model) {
  QuantizedSnapshot snap;
  snap.bits = model.bits();
  snap.dims = model.dims();
  snap.num_classes = model.num_classes();
  snap.kernel = model.kernel();
  const auto& q = model.quantizer();
  snap.boundaries = q.boundaries();
  for (int level = 0; level < q.levels(); ++level)
    snap.centroids.push_back(q.reconstruct(level));
  for (int k = 0; k < model.num_classes(); ++k) {
    const auto row = model.class_digits(k);
    snap.digits.insert(snap.digits.end(), row.begin(), row.end());
  }
  return snap;
}

int QuantizedSnapshot::predict_digits(std::span<const int> query_digits) const {
  if (static_cast<int>(query_digits.size()) != dims)
    throw std::invalid_argument("QuantizedSnapshot: query size mismatch");
  int best = 0;
  double best_score = -1e300;
  for (int k = 0; k < num_classes; ++k) {
    const int* row = digits.data() +
                     static_cast<std::size_t>(k) * static_cast<std::size_t>(dims);
    double score = 0.0;
    switch (kernel) {
      case SimilarityKernel::kDigitMatch: {
        int matches = 0;
        for (int j = 0; j < dims; ++j)
          if (row[j] == query_digits[static_cast<std::size_t>(j)]) ++matches;
        score = matches;
        break;
      }
      case SimilarityKernel::kL1Digits: {
        long dist = 0;
        for (int j = 0; j < dims; ++j)
          dist += std::abs(row[j] - query_digits[static_cast<std::size_t>(j)]);
        score = -static_cast<double>(dist);
        break;
      }
      case SimilarityKernel::kQuantizedCosine: {
        double dot = 0.0, nc = 0.0, nq = 0.0;
        for (int j = 0; j < dims; ++j) {
          const double vc = centroids[static_cast<std::size_t>(row[j])];
          const double vq = centroids[static_cast<std::size_t>(
              query_digits[static_cast<std::size_t>(j)])];
          dot += vc * vq;
          nc += vc * vc;
          nq += vq * vq;
        }
        score = (nc > 0.0 && nq > 0.0) ? dot / std::sqrt(nc * nq) : 0.0;
        break;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = k;
    }
  }
  return best;
}

void save_snapshot(const QuantizedSnapshot& snap, std::ostream& out) {
  out << kMagic << " v" << snap.version << "\n";
  out << snap.bits << " " << snap.dims << " " << snap.num_classes << " "
      << kernel_code(snap.kernel) << "\n";
  out << snap.boundaries.size();
  for (float b : snap.boundaries) out << " " << b;
  out << "\n" << snap.centroids.size();
  for (float c : snap.centroids) out << " " << c;
  out << "\n";
  for (int d : snap.digits) out << d << " ";
  out << "\n";
  if (!out) throw std::runtime_error("save_snapshot: stream failure");
}

QuantizedSnapshot load_snapshot(std::istream& in) {
  QuantizedSnapshot snap;
  std::string magic, version;
  in >> magic >> version;
  if (magic != kMagic || version != "v1")
    throw std::runtime_error("load_snapshot: bad header");
  int kernel_id = 0;
  in >> snap.bits >> snap.dims >> snap.num_classes >> kernel_id;
  snap.kernel = kernel_from_code(kernel_id);
  if (snap.bits < 1 || snap.bits > 8 || snap.dims < 1 || snap.num_classes < 2)
    throw std::runtime_error("load_snapshot: implausible dimensions");

  std::size_t nb = 0;
  in >> nb;
  if (nb != static_cast<std::size_t>((1 << snap.bits) - 1))
    throw std::runtime_error("load_snapshot: boundary count mismatch");
  snap.boundaries.resize(nb);
  for (auto& b : snap.boundaries) in >> b;

  std::size_t nc = 0;
  in >> nc;
  if (nc != static_cast<std::size_t>(1 << snap.bits))
    throw std::runtime_error("load_snapshot: centroid count mismatch");
  snap.centroids.resize(nc);
  for (auto& c : snap.centroids) in >> c;

  snap.digits.resize(static_cast<std::size_t>(snap.dims) *
                     static_cast<std::size_t>(snap.num_classes));
  for (auto& d : snap.digits) {
    in >> d;
    if (d < 0 || d >= (1 << snap.bits))
      throw std::runtime_error("load_snapshot: digit out of range");
  }
  if (!in) throw std::runtime_error("load_snapshot: truncated input");
  return snap;
}

void save_snapshot_file(const QuantizedSnapshot& snap, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_snapshot_file: cannot open " + path);
  save_snapshot(snap, out);
}

QuantizedSnapshot load_snapshot_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_snapshot_file: cannot open " + path);
  return load_snapshot(in);
}

}  // namespace tdam::hdc
