#include "hdc/online.h"

#include <cmath>
#include <stdexcept>

namespace tdam::hdc {

OnlineAmLearner::OnlineAmLearner(int num_classes, int dims,
                                 OnlineAmOptions options)
    : options_(options), shadow_(num_classes, dims) {
  if (options_.bits < 1 || options_.bits > 4)
    throw std::invalid_argument("OnlineAmLearner: bits in [1,4]");
  if (options_.epochs < 1)
    throw std::invalid_argument("OnlineAmLearner: epochs >= 1");
}

const QuantizedModel& OnlineAmLearner::quantized() const {
  if (!quantized_) throw std::logic_error("OnlineAmLearner: not trained yet");
  return *quantized_;
}

void OnlineAmLearner::requantize() {
  quantized_ =
      std::make_unique<QuantizedModel>(shadow_, options_.bits, options_.kernel);
}

OnlineAmReport OnlineAmLearner::train(std::span<const float> encodings,
                                      std::span<const int> labels) {
  const auto d = static_cast<std::size_t>(shadow_.dims());
  if (encodings.size() != labels.size() * d)
    throw std::invalid_argument("OnlineAmLearner: encoding matrix shape");

  // Bootstrap: one bundling pass in the float domain (no AM involved yet).
  TrainOptions bundle;
  bundle.epochs = 0;
  shadow_.train(encodings, labels, bundle);
  requantize();

  OnlineAmReport report;
  report.requantizations = 1;
  const float lr = options_.learning_rate;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::size_t correct = 0;
    int since_requant = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const float* enc = encodings.data() + i * d;
      // Hardware-domain inference: the AM returns digitised per-class
      // mismatch counts; the argmin is the prediction.
      const int pred = quantized_->predict(enc);
      const int y = labels[i];
      if (pred == y) {
        ++correct;
        continue;
      }
      // Error-driven OnlineHD update applied to the float shadow.
      shadow_.apply_update(y, enc, lr);
      shadow_.apply_update(pred, enc, -lr);
      ++report.updates;
      if (options_.requantize_every > 0 &&
          ++since_requant >= options_.requantize_every) {
        since_requant = 0;
        requantize();
        ++report.requantizations;
      }
    }
    requantize();
    ++report.requantizations;
    report.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(labels.size());
  }
  return report;
}

double OnlineAmLearner::evaluate(std::span<const float> encodings,
                                 std::span<const int> labels) const {
  return quantized().evaluate(encodings, labels);
}

}  // namespace tdam::hdc
