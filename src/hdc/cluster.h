// HDC clustering in the digit domain — one of the HDC task families the
// paper cites ("graph memorization, reasoning, classification, CLUSTERING,
// genomic detection").
//
// K-means-style loop where the assignment step is exactly the TD-AM's
// operation: each sample's digit vector is searched against the K centroid
// rows and joins the nearest (digit-Hamming) one.  Centroids are
// re-estimated in the float domain (per-dimension mean) and re-quantized —
// mirroring how a host would drive an AM-accelerated clustering job.
#pragma once

#include <span>
#include <vector>

#include "hdc/quantizer.h"
#include "util/rng.h"

namespace tdam::hdc {

struct ClusterOptions {
  int clusters = 4;
  int bits = 2;
  int max_iterations = 25;
  std::uint64_t seed = 1;
};

struct ClusterResult {
  std::vector<int> assignment;            // per sample
  std::vector<std::vector<int>> centroid_digits;  // [clusters x dims]
  int iterations = 0;
  bool converged = false;
  long am_searches = 0;  // assignment lookups the AM would execute
};

// Clusters pre-encoded hypervectors (row-major [n x dims]).
ClusterResult cluster_hypervectors(std::span<const float> encodings,
                                   std::size_t n, int dims,
                                   const ClusterOptions& options);

// Clustering quality against ground-truth labels: purity in [0, 1]
// (fraction of samples in clusters whose majority label matches theirs).
double cluster_purity(std::span<const int> assignment,
                      std::span<const int> labels, int clusters,
                      int num_classes);

}  // namespace tdam::hdc
