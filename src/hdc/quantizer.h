// Equal-area probabilistic quantizer (Sec. IV-B of the paper).
//
// "By thoroughly mapping the class hypervector values based on probability
// distributions into 2^n blocks of equal areas, we achieved a nuanced
// representation, allocating smaller widths to more significant values."
//
// Implementation: block boundaries are the (k/2^n)-quantiles of the fitted
// value population, so every block carries equal probability mass; dense
// regions get narrow blocks.  Values are mapped to their block index (the
// n-bit digit stored in / searched against the AM) and can be reconstructed
// from the block centroid (median) for analysis.
#pragma once

#include <span>
#include <vector>

namespace tdam::hdc {

class EqualAreaQuantizer {
 public:
  // Fits 2^bits equal-mass blocks on `values`.  bits in [1, 8].
  EqualAreaQuantizer(std::span<const float> values, int bits);

  int bits() const { return bits_; }
  int levels() const { return 1 << bits_; }

  // Digit (block index) for a value; clamped at the extremes.
  int quantize(float value) const;
  std::vector<int> quantize_all(std::span<const float> values) const;

  // Block centroid (median of the fitted mass in the block).
  float reconstruct(int level) const;

  const std::vector<float>& boundaries() const { return boundaries_; }

 private:
  int bits_;
  std::vector<float> boundaries_;  // levels-1 ascending cut points
  std::vector<float> centroids_;   // levels representative values
};

}  // namespace tdam::hdc
