// AM-in-the-loop online learning.
//
// The paper criticises winner-take-all accelerators for not exposing the
// exact similarity value, "which is crucial for parameter update in some
// machine learning algorithms [35 = OnlineHD]".  This module closes that
// loop: an OnlineHD-style learner whose *inference during training* runs on
// the quantized digit domain the TD-AM computes in hardware (mismatch counts
// per class), so the hardware's quantitative output directly drives the
// updates.  Class vectors are kept in float shadow storage (as a real system
// would, in the digital domain) and re-quantized into the AM periodically.
#pragma once

#include <memory>
#include <vector>

#include "hdc/model.h"

namespace tdam::hdc {

struct OnlineAmOptions {
  int bits = 2;
  int epochs = 4;
  float learning_rate = 0.05f;
  // Re-quantize the shadow model into the AM every `requantize_every`
  // updates (write cost is tracked).  0 = after every epoch only.
  int requantize_every = 0;
  SimilarityKernel kernel = SimilarityKernel::kDigitMatch;
};

struct OnlineAmReport {
  int updates = 0;        // error-driven updates applied
  int requantizations = 0;  // times the AM contents were rewritten
  double train_accuracy = 0.0;  // final-epoch training accuracy (AM domain)
};

class OnlineAmLearner {
 public:
  OnlineAmLearner(int num_classes, int dims, OnlineAmOptions options = {});

  // Trains on pre-encoded hypervectors.  Inference inside the loop uses the
  // quantized model (the AM's view); updates go to the float shadow.
  OnlineAmReport train(std::span<const float> encodings,
                       std::span<const int> labels);

  // Final quantized model (what the AM holds after training).
  const QuantizedModel& quantized() const;
  // Float shadow (for comparison with pure-software training).
  const HdcModel& shadow() const { return shadow_; }

  double evaluate(std::span<const float> encodings,
                  std::span<const int> labels) const;

 private:
  void requantize();

  OnlineAmOptions options_;
  HdcModel shadow_;
  std::unique_ptr<QuantizedModel> quantized_;
};

}  // namespace tdam::hdc
