#include "hdc/encoder.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tdam::hdc {

Encoder::Encoder(int num_features, int max_dims, Rng& rng, double bandwidth)
    : num_features_(num_features), max_dims_(max_dims) {
  if (num_features < 1 || max_dims < 1)
    throw std::invalid_argument("Encoder: bad dimensions");
  const auto f = static_cast<std::size_t>(num_features);
  const auto d = static_cast<std::size_t>(max_dims);
  weights_.resize(d * f);
  bias_.resize(d);
  // Scale 1/sqrt(features) keeps the projection variance O(1) regardless of
  // input width; `bandwidth` is the kernel width knob.
  const double scale = bandwidth / std::sqrt(static_cast<double>(num_features));
  for (auto& w : weights_) w = static_cast<float>(rng.gaussian(0.0, scale));
  for (auto& b : bias_)
    b = static_cast<float>(rng.uniform(0.0, 2.0 * std::numbers::pi));
}

std::vector<float> Encoder::encode(const float* sample, int dims) const {
  if (dims < 1 || dims > max_dims_)
    throw std::invalid_argument("Encoder::encode: dims outside [1, max_dims]");
  const auto f = static_cast<std::size_t>(num_features_);
  std::vector<float> out(static_cast<std::size_t>(dims));
  for (std::size_t row = 0; row < out.size(); ++row) {
    const float* w = weights_.data() + row * f;
    float acc = bias_[row];
    for (std::size_t j = 0; j < f; ++j) acc += w[j] * sample[j];
    out[row] = std::cos(acc);
  }
  return out;
}

std::vector<float> Encoder::encode_dataset(const Dataset& ds, int dims) const {
  if (ds.num_features() != num_features_)
    throw std::invalid_argument("Encoder::encode_dataset: feature mismatch");
  std::vector<float> out;
  out.reserve(ds.size() * static_cast<std::size_t>(dims));
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto enc = encode(ds.sample(i), dims);
    out.insert(out.end(), enc.begin(), enc.end());
  }
  return out;
}

}  // namespace tdam::hdc
