#include "baselines/backends.h"

#include <stdexcept>

namespace tdam::baselines {

namespace {
int operand_bits_for(int levels) {
  int bits = 1;
  while ((1 << bits) < levels) ++bits;
  return bits;
}
}  // namespace

DigitalPopcountBackend::DigitalPopcountBackend(int stages, int levels,
                                               int lanes,
                                               DigitalPopcountParams params,
                                               core::ScanOptions scan)
    : matrix_(stages, levels),
      lanes_(lanes),
      digit_bits_(operand_bits_for(levels)),
      model_(params),
      scan_(scan) {
  if (lanes < 1)
    throw std::invalid_argument("DigitalPopcountBackend: lanes must be >= 1");
}

core::BackendTopK DigitalPopcountBackend::search_topk(
    std::span<const int> query, int k) const {
  // The comparator array computes exact digit mismatches; latency/energy of
  // a full query come from the cost hook, not per-row accounting.
  return core::exhaustive_topk(matrix_, query, k,
                               core::DigitMetric::kMismatchCount);
}

core::BackendTopK DigitalPopcountBackend::search_topk_packed(
    std::span<const std::uint32_t> packed, int k) const {
  return core::exhaustive_topk_packed(matrix_, packed, k,
                                      core::DigitMetric::kMismatchCount);
}

std::vector<core::BackendTopK> DigitalPopcountBackend::search_topk_packed_batch(
    const core::DigitMatrix& queries, int first, int count, int k) const {
  // Exhaustive results carry no native latency/energy (costs come from the
  // query_cost hook), so the tiled software scan is semantics-preserving.
  return core::exhaustive_topk_packed_batch(
      matrix_, queries, first, count, k, core::DigitMetric::kMismatchCount,
      scan_);
}

void DigitalPopcountBackend::adopt_matrix(core::DigitMatrix matrix) {
  core::check_adopt_geometry(*this, matrix,
                             "DigitalPopcountBackend::adopt_matrix");
  matrix_ = std::move(matrix);
}

core::QueryCost DigitalPopcountBackend::query_cost(
    double mismatch_fraction) const {
  if (mismatch_fraction < 0.0 || mismatch_fraction > 1.0)
    throw std::invalid_argument(
        "DigitalPopcountBackend::query_cost: bad mismatch fraction");
  core::QueryCost out;
  if (matrix_.rows() == 0) return out;
  const auto cost =
      model_.query_cost(matrix_.cols(), digit_bits_, matrix_.rows(), lanes_);
  out.latency = cost.latency;
  out.energy = cost.energy;
  out.passes = (matrix_.rows() + lanes_ - 1) / lanes_;
  return out;
}

CrossbarCamBackend::CrossbarCamBackend(int stages, int levels, int array_rows,
                                       CrossbarCamParams params,
                                       core::ScanOptions scan)
    : matrix_(stages, levels),
      array_rows_(array_rows),
      model_(params),
      scan_(scan) {
  if (array_rows < 1)
    throw std::invalid_argument(
        "CrossbarCamBackend: array_rows must be >= 1");
}

core::BackendTopK CrossbarCamBackend::search_topk(std::span<const int> query,
                                                  int k) const {
  return core::exhaustive_topk(matrix_, query, k,
                               core::DigitMetric::kMismatchCount);
}

core::BackendTopK CrossbarCamBackend::search_topk_packed(
    std::span<const std::uint32_t> packed, int k) const {
  return core::exhaustive_topk_packed(matrix_, packed, k,
                                      core::DigitMetric::kMismatchCount);
}

std::vector<core::BackendTopK> CrossbarCamBackend::search_topk_packed_batch(
    const core::DigitMatrix& queries, int first, int count, int k) const {
  return core::exhaustive_topk_packed_batch(
      matrix_, queries, first, count, k, core::DigitMetric::kMismatchCount,
      scan_);
}

void CrossbarCamBackend::adopt_matrix(core::DigitMatrix matrix) {
  core::check_adopt_geometry(*this, matrix,
                             "CrossbarCamBackend::adopt_matrix");
  matrix_ = std::move(matrix);
}

core::QueryCost CrossbarCamBackend::query_cost(
    double mismatch_fraction) const {
  core::QueryCost out;
  if (matrix_.rows() == 0) return out;
  // search_cost validates the mismatch fraction and scales energy with the
  // total row count; latency folds across sequential sense windows when the
  // stored set overfills one crossbar.
  const auto cost =
      model_.search_cost(matrix_.rows(), matrix_.cols(), mismatch_fraction);
  out.passes = (matrix_.rows() + array_rows_ - 1) / array_rows_;
  out.latency = static_cast<double>(out.passes) * cost.latency;
  out.energy = cost.energy;
  return out;
}

}  // namespace tdam::baselines
