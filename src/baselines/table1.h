// Literature comparison rows of Table I.
//
// Table I in the paper is a literature table: each competing design's
// energy-per-bit is quoted from its own publication.  We reproduce the
// quoted numbers (so the harness can print the same table) and add a column
// with our own simulator's measured value for this work, which is the only
// row we can honestly re-derive.
#pragma once

#include <string>
#include <vector>

namespace tdam::baselines {

struct Table1Row {
  std::string design;
  std::string signal_domain;  // "Voltage" / "Time"
  std::string device;
  std::string cell;
  std::string sc_type;
  double energy_per_bit_fj;   // as quoted in the paper
  int technology_nm;
  bool quantitative;          // supports quantitative similarity output
};

// Rows exactly as quoted in the paper (this work's quoted value included for
// reference; the harness reports our measured value alongside).
const std::vector<Table1Row>& table1_literature();

// The paper's quoted value for this work (0.159 fJ/bit at the best
// operating point), used to compute the paper's ratio column.
double paper_this_work_fj_per_bit();

}  // namespace tdam::baselines
