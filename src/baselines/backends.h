// The Table-I rival architectures as serving backends.
//
// DigitalPopcountModel and CrossbarCamModel were cost-formula silos: they
// priced a query but could not answer one.  These wrappers bolt each cost
// model onto a packed core::DigitMatrix, making them full
// core::SimilarityBackend implementations — exact digit-mismatch distances
// (both architectures compare digits exactly; only their readout physics
// differ) with the existing latency/energy formulas as the QueryCostModel
// hook.  The serving runtime can then shard, batch and meter TD-AM, digital
// and CAM serving on identical workloads.
#pragma once

#include "baselines/crossbar_cam.h"
#include "baselines/digital_popcount.h"
#include "core/backend.h"
#include "core/digit_matrix.h"

namespace tdam::baselines {

// All-digital comparator array: XNOR-reduce per digit + popcount adder tree,
// `lanes` rows compared per pipeline cycle.
class DigitalPopcountBackend final : public core::SimilarityBackend {
 public:
  DigitalPopcountBackend(int stages, int levels, int lanes = 128,
                         DigitalPopcountParams params = {},
                         core::ScanOptions scan = {});

  std::string name() const override { return "digital"; }
  core::DigitMetric metric() const override {
    return core::DigitMetric::kMismatchCount;
  }
  int stages() const override { return matrix_.cols(); }
  int levels() const override { return matrix_.levels(); }
  int rows() const override { return matrix_.rows(); }

  int store(std::span<const int> digits) override {
    return matrix_.append(digits);
  }
  void clear() override { matrix_.clear(); }
  std::vector<int> row_digits(int row) const override {
    return matrix_.unpack_row(row);
  }

  core::BackendTopK search_topk(std::span<const int> query,
                                int k) const override;
  core::BackendTopK search_topk_packed(std::span<const std::uint32_t> packed,
                                       int k) const override;
  std::vector<core::BackendTopK> search_topk_packed_batch(
      const core::DigitMatrix& queries, int first, int count,
      int k) const override;
  int query_tile() const override { return scan_.query_tile; }

  void adopt_matrix(core::DigitMatrix matrix) override;
  const core::DigitMatrix* packed_view() const override { return &matrix_; }

  core::QueryCost query_cost(double mismatch_fraction) const override;

  std::size_t resident_bytes() const override {
    return matrix_.resident_bytes();
  }

  const DigitalPopcountModel& model() const { return model_; }

 private:
  core::DigitMatrix matrix_;
  int lanes_;
  int digit_bits_;  // true operand width (not the padded storage width)
  DigitalPopcountModel model_;
  core::ScanOptions scan_;
};

// Current-domain crossbar CAM: one multi-bit cell per digit, summed
// mismatch current sensed by a per-row ADC; rows beyond one `array_rows`
// crossbar fold into sequential sense windows.
class CrossbarCamBackend final : public core::SimilarityBackend {
 public:
  CrossbarCamBackend(int stages, int levels, int array_rows = 128,
                     CrossbarCamParams params = {},
                     core::ScanOptions scan = {});

  std::string name() const override { return "cam"; }
  core::DigitMetric metric() const override {
    return core::DigitMetric::kMismatchCount;
  }
  int stages() const override { return matrix_.cols(); }
  int levels() const override { return matrix_.levels(); }
  int rows() const override { return matrix_.rows(); }

  int store(std::span<const int> digits) override {
    return matrix_.append(digits);
  }
  void clear() override { matrix_.clear(); }
  std::vector<int> row_digits(int row) const override {
    return matrix_.unpack_row(row);
  }

  core::BackendTopK search_topk(std::span<const int> query,
                                int k) const override;
  core::BackendTopK search_topk_packed(std::span<const std::uint32_t> packed,
                                       int k) const override;
  std::vector<core::BackendTopK> search_topk_packed_batch(
      const core::DigitMatrix& queries, int first, int count,
      int k) const override;
  int query_tile() const override { return scan_.query_tile; }

  void adopt_matrix(core::DigitMatrix matrix) override;
  const core::DigitMatrix* packed_view() const override { return &matrix_; }

  core::QueryCost query_cost(double mismatch_fraction) const override;

  std::size_t resident_bytes() const override {
    return matrix_.resident_bytes();
  }

  const CrossbarCamModel& model() const { return model_; }

 private:
  core::DigitMatrix matrix_;
  int array_rows_;
  CrossbarCamModel model_;
  core::ScanOptions scan_;
};

}  // namespace tdam::baselines
