// Variable-RESISTANCE time-domain delay chain — the architecture of the
// prior FeFET TD-IMC designs (IEDM'21 [22] / early [24]) that the paper's
// variable-capacitance structure argues against.
//
// Here the FeFET sits directly in the inverter's pull-down path and acts as
// a tunable resistor: its programmed V_TH modulates the falling-edge delay.
// Two consequences the paper criticises, both reproducible with this model:
//   1. delay is exponentially sensitive to V_TH near the subthreshold
//      boundary, so the same sigma(V_TH) produces a far wider delay spread
//      than in the VC design (ablation A1);
//   2. a FeFET programmed deep into the OFF state interrupts propagation
//      entirely — the edge never arrives (computation failure).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "device/fefet.h"
#include "device/tech.h"
#include "device/variation.h"
#include "spice/simulator.h"
#include "util/rng.h"

namespace tdam::baselines {

struct ResistiveChainConfig {
  device::TechParams tech = device::TechParams::umc40_class();
  device::FeFetParams fefet = device::FeFetParams::hzo_default(tech);
  double vdd = 1.1;
  double v_sl = 1.1;       // gate drive applied to every in-path FeFET
  double vth_fast = 0.30;  // programmed V_TH for a fast (matching) stage
  double vth_slow = 0.95;  // programmed V_TH for a slow (mismatching) stage
  double wn_inv = 1.0;
  double wp_inv = 2.2;
  double w_fefet = 2.0;
  double t_edge_transition = 20e-12;
  double max_dv_step = 2.5e-3;
};

struct ResistiveResult {
  bool propagated = false;  // false when an OFF device blocks the edge
  double delay_total = 0.0; // both edges (s), valid when propagated
  double energy = 0.0;      // J
};

class ResistiveChain {
 public:
  ResistiveChain(const ResistiveChainConfig& config, int stages, Rng& rng);

  int num_stages() const { return static_cast<int>(fefets_.size()); }

  // Programs per-stage threshold voltages (clamped to the memory window).
  void program(std::span<const double> vths);
  // Convenience: fast/slow pattern from a boolean "mismatch" mask.
  // (vector<bool> because the packed specialization cannot form a span.)
  void program_pattern(const std::vector<bool>& mismatch);

  void apply_vth_offsets(std::span<const double> offsets);
  void clear_offsets();

  // Propagates a full pulse and measures the summed edge delays.
  ResistiveResult measure();

 private:
  ResistiveChainConfig config_;
  std::vector<std::unique_ptr<device::FeFet>> fefets_;
};

}  // namespace tdam::baselines
