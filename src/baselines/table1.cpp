#include "baselines/table1.h"

namespace tdam::baselines {

const std::vector<Table1Row>& table1_literature() {
  static const std::vector<Table1Row> rows = {
      {"16T TCAM [29]", "Voltage", "CMOS", "16T",
       "Hamming distance, non-quantitative", 0.59, 45, false},
      {"Nat. Electron.'19 [15]", "Voltage", "FeFET", "2FeFET",
       "Hamming distance, non-quantitative", 0.40, 45, false},
      {"JSSC'21 [20]", "Time", "CMOS", "20T+4MUX",
       "MAC/Cosine distance, quantitative", 2.20, 28, true},
      {"IEDM'21 [22]", "Time", "FeFET", "2T-1FeFET",
       "MAC/Cosine distance, quantitative", 0.039, 14, true},
      {"Work [24]", "Time", "FeFET", "3T-2FeFET",
       "MAC/Hamming distance, quantitative", 0.234, 40, true},
  };
  return rows;
}

double paper_this_work_fj_per_bit() { return 0.159; }

}  // namespace tdam::baselines
