#include "baselines/gpu_model.h"

#include <algorithm>
#include <stdexcept>

namespace tdam::baselines {

GpuCost GpuModel::roofline(double flops, double bytes) const {
  const double t_mem =
      bytes / (params_.mem_bandwidth * params_.achieved_fraction);
  const double t_cmp = flops / (params_.peak_flops * params_.achieved_fraction);
  GpuCost cost;
  cost.latency = params_.launch_overhead + std::max(t_mem, t_cmp);
  cost.energy = (params_.board_power - params_.idle_power) * cost.latency;
  return cost;
}

GpuCost GpuModel::similarity_query(int dims, int classes,
                                   int bytes_per_element) const {
  if (dims < 1 || classes < 1 || bytes_per_element < 1)
    throw std::invalid_argument("GpuModel::similarity_query: bad arguments");
  const double d = dims;
  const double k = classes;
  const double flops = 2.0 * d * k;  // dot products + reduction
  const double bytes =
      (d * k + d + k) * static_cast<double>(bytes_per_element);
  return roofline(flops, bytes);
}

GpuCost GpuModel::encode_sample(int features, int dims) const {
  if (features < 1 || dims < 1)
    throw std::invalid_argument("GpuModel::encode_sample: bad arguments");
  const double f = features;
  const double d = dims;
  const double flops = 2.0 * f * d + 4.0 * d;  // projection + nonlinearity
  const double bytes = (f * d + f + d) * 4.0;
  return roofline(flops, bytes);
}

}  // namespace tdam::baselines
