#include "baselines/resistive_chain.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tdam::baselines {

ResistiveChain::ResistiveChain(const ResistiveChainConfig& config, int stages,
                               Rng& rng)
    : config_(config) {
  if (stages < 1)
    throw std::invalid_argument("ResistiveChain: need at least one stage");
  fefets_.reserve(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    auto f = std::make_unique<device::FeFet>(config_.fefet, rng);
    f->program_vth(config_.vth_fast);
    fefets_.push_back(std::move(f));
  }
}

void ResistiveChain::program(std::span<const double> vths) {
  if (static_cast<int>(vths.size()) != num_stages())
    throw std::invalid_argument("ResistiveChain::program: size mismatch");
  for (std::size_t i = 0; i < vths.size(); ++i) {
    const double v = std::clamp(vths[i], config_.fefet.vth_low,
                                config_.fefet.vth_high);
    fefets_[i]->program_vth(v);
  }
}

void ResistiveChain::program_pattern(const std::vector<bool>& mismatch) {
  std::vector<double> vths;
  vths.reserve(mismatch.size());
  for (bool m : mismatch)
    vths.push_back(m ? config_.vth_slow : config_.vth_fast);
  program(vths);
}

void ResistiveChain::apply_vth_offsets(std::span<const double> offsets) {
  if (static_cast<int>(offsets.size()) != num_stages())
    throw std::invalid_argument("ResistiveChain::apply_vth_offsets: size mismatch");
  for (std::size_t i = 0; i < offsets.size(); ++i)
    fefets_[i]->set_vth_offset(offsets[i]);
}

void ResistiveChain::clear_offsets() {
  for (auto& f : fefets_) f->set_vth_offset(0.0);
}

ResistiveResult ResistiveChain::measure() {
  const int n = num_stages();
  const auto& tech = config_.tech;
  const double vdd = config_.vdd;
  const double tr = config_.t_edge_transition;

  // Window bound: the slowest stage is limited by the FeFET near-threshold
  // current; use the slow-V_TH on-resistance with margin.
  device::MosfetParams slow_ch = config_.fefet.channel;
  slow_ch.vth = config_.vth_slow + 0.1;
  const device::Mosfet slow_dev(device::Polarity::kNmos, slow_ch,
                                config_.w_fefet);
  const double i_slow = std::max(
      1e-9, slow_dev.drain_current(config_.v_sl, vdd / 2.0, 0.0));
  const double c_node =
      tech.c_drain_min * (config_.wp_inv + config_.wn_inv) + tech.c_wire_stage +
      tech.c_gate_min * (config_.wp_inv + config_.wn_inv);
  const double d_slow = c_node * vdd / i_slow;
  const double window =
      0.5e-9 + 3.0 * static_cast<double>(n) * std::max(20e-12, d_slow);

  const double t_e1 = 0.2e-9;
  const double t_e2 = t_e1 + window;
  const double t_stop = t_e2 + window + 0.2e-9;

  spice::Circuit circuit;
  const auto vdd_node = circuit.add_source_node("vdd", spice::dc(vdd), "vdd");
  const auto sl_node =
      circuit.add_source_node("sl", spice::dc(config_.v_sl), "sl");
  const auto input_node = circuit.add_source_node(
      "in",
      spice::piecewise_linear(
          {{0.0, 0.0}, {t_e1, 0.0}, {t_e1 + tr, vdd}, {t_e2, vdd}, {t_e2 + tr, 0.0}}),
      "input");
  circuit.add_node_capacitance(
      input_node, tech.c_gate_min * (config_.wp_inv + config_.wn_inv));

  const device::Mosfet inv_n(device::Polarity::kNmos, tech.nmos, config_.wn_inv);
  const device::Mosfet inv_p(device::Polarity::kPmos, tech.pmos, config_.wp_inv);

  spice::NodeId prev = input_node;
  spice::NodeId last_out = input_node;
  for (int k = 1; k <= n; ++k) {
    const auto ks = std::to_string(k);
    const auto out = circuit.add_node("out" + ks, c_node);
    const auto mid = circuit.add_node(
        "mid" + ks,
        tech.c_drain_min * (config_.wn_inv + config_.w_fefet));
    circuit.add_mosfet(inv_p, prev, out, vdd_node);
    circuit.add_mosfet(inv_n, prev, out, mid);
    circuit.add_fefet(fefets_[static_cast<std::size_t>(k - 1)].get(), sl_node,
                      mid, spice::kGround);
    circuit.add_node_capacitance(sl_node, tech.c_fefet_gate);
    prev = out;
    last_out = out;
  }

  spice::Simulator sim(circuit);
  // Idle levels for a low input.
  for (int k = 1; k <= n; ++k) {
    const auto out = circuit.find_node("out" + std::to_string(k));
    const auto mid = circuit.find_node("mid" + std::to_string(k));
    sim.set_initial(out, (k % 2 == 1) ? vdd : 0.0);
    sim.set_initial(mid, 0.0);
  }
  sim.probe(last_out);

  spice::TransientOptions opts;
  opts.t_stop = t_stop;
  opts.max_dv_step = config_.max_dv_step;
  opts.dt_max = std::clamp(t_stop / 20000.0, 20e-12, 500e-12);
  auto transient = sim.run(opts);

  const auto& out_trace = transient.trace("out" + std::to_string(n));
  const bool rises_first = (n % 2 == 0);
  const double half = 0.5 * vdd;
  const double t1 = out_trace.crossing_time(
      half, rises_first ? spice::Edge::kRising : spice::Edge::kFalling, t_e1);
  const double t2 = out_trace.crossing_time(
      half, rises_first ? spice::Edge::kFalling : spice::Edge::kRising, t_e2);

  ResistiveResult result;
  for (const auto& [name, joules] : transient.source_energy)
    if (name != "gnd") result.energy += joules;
  if (t1 < 0.0 || t1 > t_e2 || t2 < 0.0) {
    result.propagated = false;  // an OFF device blocked the edge
    return result;
  }
  result.propagated = true;
  result.delay_total =
      (t1 - (t_e1 + 0.5 * tr)) + (t2 - (t_e2 + 0.5 * tr));
  return result;
}

}  // namespace tdam::baselines
