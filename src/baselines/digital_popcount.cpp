#include "baselines/digital_popcount.h"

#include <cmath>
#include <stdexcept>

namespace tdam::baselines {

DigitalPopcountModel::DigitalPopcountModel(DigitalPopcountParams params)
    : params_(params) {
  if (params_.clock_hz <= 0.0)
    throw std::invalid_argument("DigitalPopcountModel: bad clock");
}

double DigitalPopcountModel::energy_per_bit(int digits, int bits) const {
  if (digits < 1 || bits < 1)
    throw std::invalid_argument("DigitalPopcountModel: bad shape");
  const double total_bits = static_cast<double>(digits) * bits;
  // XNOR per bit, digit-reduce folded into the adder tree, popcount adders
  // (~log2(digits) levels amortise to ~2 adder-bit energies per input bit),
  // one pipeline register level per bit.
  double e = total_bits * (params_.e_xnor_per_bit +
                           2.0 * params_.e_adder_per_bit + params_.e_flop);
  if (params_.charge_storage_reads)
    e += total_bits * params_.e_sram_read_per_bit;
  return e / total_bits;
}

DigitalCost DigitalPopcountModel::query_cost(int digits, int bits, int rows,
                                             int lanes) const {
  if (digits < 1 || bits < 1 || rows < 1 || lanes < 1)
    throw std::invalid_argument("DigitalPopcountModel: bad shape");
  DigitalCost cost;
  const double e_bit = energy_per_bit(digits, bits);
  cost.energy = e_bit * static_cast<double>(digits) * bits *
                static_cast<double>(rows);

  // Pipeline: each lane compares one row per cycle once filled; the adder
  // tree adds log2(digits) pipeline stages of fill latency.
  const double cycles_fill = std::ceil(std::log2(std::max(2, digits))) + 2.0;
  const double cycles_rows =
      std::ceil(static_cast<double>(rows) / static_cast<double>(lanes));
  cost.latency = (cycles_fill + cycles_rows) / params_.clock_hz;
  cost.throughput = params_.clock_hz / cycles_rows;
  return cost;
}

}  // namespace tdam::baselines
