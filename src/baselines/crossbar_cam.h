// Current-domain crossbar CAM baseline (the Sec. II-B comparison class:
// multi-bit FeFET CAM crossbars [25] and COSIME-style translinear designs
// [12]).
//
// These architectures sense the summed mismatch current of a row during a
// compare window: quantitative, parallel — but the match-line carries DC
// current for the whole sensing interval and the sense amplifier/ADC burns
// static bias.  This model quantifies that structural cost so the TD-AM's
// "no DC path" advantage (its mismatch current stops the instant the MN
// rails) can be compared quantitatively rather than rhetorically.
#pragma once

namespace tdam::baselines {

// Defaults sized for MULTI-BIT (quantitative) crossbar sensing: resolving
// the summed mismatch current to ~7 bits needs an ADC-class converter and a
// multi-nanosecond integration window — exactly the sensing cost the paper
// notes ref [25] leaves undiscussed ("the cost of sensing unit (i.e., ADC)
// was not discussed").
struct CrossbarCamParams {
  double i_cell_mismatch = 5e-6;   // A: per mismatched cell during sensing
  double i_cell_match = 2e-9;      // A: subthreshold leak of a matched cell
  double v_ml = 0.8;               // V: match-line bias
  double t_sense = 5e-9;           // s: integration window for ADC settling
  double e_senseamp = 120e-15;     // J: multi-level ADC per row conversion
  double i_senseamp_bias = 20e-6;  // A: converter static bias in the window
};

struct CrossbarCost {
  double energy = 0.0;        // J per search over the array
  double static_fraction = 0.0;  // share burnt in DC bias + sustained current
  double latency = 0.0;       // s (the sense window)
};

class CrossbarCamModel {
 public:
  explicit CrossbarCamModel(CrossbarCamParams params = {});

  // One parallel search: `rows` stored vectors of `cells` cells each, with
  // an average per-cell mismatch fraction.
  CrossbarCost search_cost(int rows, int cells, double mismatch_fraction) const;

  // Energy per compared bit at the given precision.
  double energy_per_bit(int cells, int bits, double mismatch_fraction) const;

  const CrossbarCamParams& params() const { return params_; }

 private:
  CrossbarCamParams params_;
};

}  // namespace tdam::baselines
