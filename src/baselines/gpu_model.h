// Analytical GPU cost model for the Fig. 8 comparison.
//
// The paper measures an RTX 4070 running HDC similarity search in PyTorch
// (batch-1 edge inference).  We cannot run a GPU offline, so the comparison
// substitutes a roofline model with RTX-4070-class constants: per-query
// latency is the kernel-launch / framework floor plus the larger of the
// memory-traffic and compute times, and energy is board power integrated
// over the busy interval.  The *shape* of Fig. 8 — large gains at small
// dimensionality that attenuate as the AM has to fold large vectors across
// passes while the GPU amortises its fixed overhead — comes from exactly
// these terms, not from the absolute constants.
#pragma once

namespace tdam::baselines {

struct GpuModelParams {
  double mem_bandwidth = 504e9;    // B/s   (RTX 4070 GDDR6X)
  double peak_flops = 29e12;       // FP32 FLOP/s
  double achieved_fraction = 0.30; // roofline efficiency for slim GEMV work
  double launch_overhead = 5e-6;   // s: kernel launch + framework dispatch
  double board_power = 180.0;      // W while busy
  double idle_power = 25.0;        // W baseline (subtracted: dynamic energy)
};

struct GpuCost {
  double latency = 0.0;  // s per query
  double energy = 0.0;   // J per query (dynamic, above idle)
};

class GpuModel {
 public:
  explicit GpuModel(GpuModelParams params = {}) : params_(params) {}

  // One similarity query: a [1 x dims] vector against [classes x dims]
  // stored matrix, `bytes_per_element` wide (4 for FP32, 1 for int8 kernels).
  GpuCost similarity_query(int dims, int classes, int bytes_per_element = 4) const;

  // Encoding cost of one input sample into a `dims`-wide hypervector from
  // `features` raw features (random-projection encoding).
  GpuCost encode_sample(int features, int dims) const;

  const GpuModelParams& params() const { return params_; }

 private:
  GpuCost roofline(double flops, double bytes) const;

  GpuModelParams params_;
};

}  // namespace tdam::baselines
