// All-digital similarity-search baseline: the question every IMC paper gets
// asked — "why not a plain digital comparator array?"
//
// Architecture modelled: per row, a `digits`-wide digit comparator (XNOR-
// reduce per digit) feeding a popcount adder tree, pipelined at the
// technology's digital clock.  Energy per operation uses 40 nm-class gate
// energies (including local wiring); the model intentionally favours the
// digital side (full pipelining, no SRAM fetch charged for query reuse) so
// the TD-AM's advantage is a lower bound.
#pragma once

namespace tdam::baselines {

struct DigitalPopcountParams {
  double clock_hz = 1.0e9;          // digital pipeline clock at 40 nm
  double e_xnor_per_bit = 1.2e-15;  // J: XNOR gate + local wire, per bit
  double e_adder_per_bit = 2.0e-15; // J: adder-tree energy per popcount bit
  double e_flop = 0.8e-15;          // J: pipeline register per bit
  double e_sram_read_per_bit = 12e-15;  // J: fetching the stored row
  bool charge_storage_reads = true; // false = operands assumed resident
};

struct DigitalCost {
  double latency = 0.0;  // s per query (pipelined: first-result latency)
  double energy = 0.0;   // J per query over all rows
  double throughput = 0.0;  // queries/s at full pipeline utilisation
};

class DigitalPopcountModel {
 public:
  explicit DigitalPopcountModel(DigitalPopcountParams params = {});

  // One query of `digits` digits (each `bits` wide) against `rows` stored
  // vectors; `lanes` comparator rows operate in parallel.
  DigitalCost query_cost(int digits, int bits, int rows, int lanes) const;

  // Energy per compared bit — the Table-I metric for this baseline.
  double energy_per_bit(int digits, int bits) const;

  const DigitalPopcountParams& params() const { return params_; }

 private:
  DigitalPopcountParams params_;
};

}  // namespace tdam::baselines
