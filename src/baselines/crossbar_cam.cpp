#include "baselines/crossbar_cam.h"

#include <stdexcept>

namespace tdam::baselines {

CrossbarCamModel::CrossbarCamModel(CrossbarCamParams params) : params_(params) {
  if (params_.t_sense <= 0.0 || params_.v_ml <= 0.0)
    throw std::invalid_argument("CrossbarCamModel: bad parameters");
}

CrossbarCost CrossbarCamModel::search_cost(int rows, int cells,
                                           double mismatch_fraction) const {
  if (rows < 1 || cells < 1)
    throw std::invalid_argument("CrossbarCamModel: bad array shape");
  if (mismatch_fraction < 0.0 || mismatch_fraction > 1.0)
    throw std::invalid_argument("CrossbarCamModel: bad mismatch fraction");

  CrossbarCost cost;
  const double n_mis = mismatch_fraction * static_cast<double>(cells);
  const double n_match = static_cast<double>(cells) - n_mis;
  // Sustained currents over the whole sense window — the structural cost:
  // unlike the TD-AM, the mismatch current cannot stop early because its
  // magnitude IS the result.
  const double i_row = n_mis * params_.i_cell_mismatch +
                       n_match * params_.i_cell_match +
                       params_.i_senseamp_bias;
  const double e_row =
      i_row * params_.v_ml * params_.t_sense + params_.e_senseamp;
  cost.energy = e_row * static_cast<double>(rows);
  const double e_static_row =
      (n_mis * params_.i_cell_mismatch + params_.i_senseamp_bias) *
          params_.v_ml * params_.t_sense;
  cost.static_fraction = e_static_row * static_cast<double>(rows) / cost.energy;
  cost.latency = params_.t_sense;
  return cost;
}

double CrossbarCamModel::energy_per_bit(int cells, int bits,
                                        double mismatch_fraction) const {
  if (bits < 1) throw std::invalid_argument("CrossbarCamModel: bad bits");
  const auto cost = search_cost(1, cells, mismatch_fraction);
  return cost.energy / (static_cast<double>(cells) * bits);
}

}  // namespace tdam::baselines
