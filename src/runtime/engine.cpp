#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <stdexcept>

namespace tdam::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

SearchEngine::SearchEngine(const ShardedIndex& index, EngineOptions options)
    : index_(index), options_(options) {
  if (options_.threads < 1)
    throw std::invalid_argument("SearchEngine: threads must be >= 1");
  if (options_.threads > 1) pool_ = std::make_unique<ThreadPool>(options_.threads);
}

TopKResult SearchEngine::run_query(std::span<const int> query, int k) const {
  const auto t0 = std::chrono::steady_clock::now();
  TopKResult out;
  std::vector<core::TopKEntry> merged;
  merged.reserve(static_cast<std::size_t>(k) *
                 static_cast<std::size_t>(index_.num_shards()));
  const double stages = static_cast<double>(index_.stages());
  for (int s = 0; s < index_.num_shards(); ++s) {
    const auto& shard = index_.shard(s);
    if (shard.rows() == 0) continue;
    const auto local = shard.search_topk(query, k);
    for (const auto& e : local.entries)
      merged.push_back({index_.global_row(s, e.row), e.distance});
    // Modeled hardware: each shard is one physical bank answering in
    // parallel, costed by its own QueryCostModel hook at the measured
    // mismatch fraction (clamped — an L1-metric backend can report a mean
    // distance above one per digit).
    const double mismatch_fraction =
        std::clamp(local.mean_distance / stages, 0.0, 1.0);
    const auto cost = shard.query_cost(mismatch_fraction);
    out.modeled_latency = std::max(out.modeled_latency, cost.latency);
    out.modeled_energy += cost.energy;
    out.modeled_passes = std::max(out.modeled_passes, cost.passes);
  }
  // Global merge under the same total order the shards used: lower
  // distance wins, global row id breaks ties.
  const auto keep =
      std::min<std::size_t>(static_cast<std::size_t>(k), merged.size());
  std::partial_sort(merged.begin(),
                    merged.begin() + static_cast<std::ptrdiff_t>(keep),
                    merged.end());
  merged.resize(keep);
  out.entries = std::move(merged);
  out.wall_seconds = seconds_since(t0);
  return out;
}

std::vector<TopKResult> SearchEngine::submit_batch(
    std::span<const std::vector<int>> queries, int k) {
  if (k < 1)
    throw std::invalid_argument("SearchEngine::submit_batch: k must be >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<TopKResult> results(queries.size());
  if (pool_) {
    std::vector<std::future<void>> pending;
    pending.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      pending.push_back(pool_->submit([this, &queries, &results, i, k] {
        results[i] = run_query(queries[i], k);
      }));
    }
    for (auto& f : pending) f.get();  // rethrows any task exception
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i)
      results[i] = run_query(queries[i], k);
  }

  BatchStats stats;
  stats.queries = static_cast<int>(queries.size());
  stats.wall_seconds = seconds_since(t0);
  for (const auto& r : results) {
    metrics_.record_query_wall(r.wall_seconds);
    stats.modeled_latency += r.modeled_latency;
    stats.modeled_energy += r.modeled_energy;
  }
  metrics_.record_batch(stats);
  metrics_.set_resident_index_bytes(index_.resident_bytes());
  return results;
}

}  // namespace tdam::runtime
