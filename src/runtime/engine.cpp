#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>

namespace tdam::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

SearchEngine::SearchEngine(const ShardedIndex& index, EngineOptions options)
    : index_(index), options_(options) {
  if (options_.threads < 1)
    throw std::invalid_argument("SearchEngine: threads must be >= 1");
  if (options_.threads > 1) pool_ = std::make_unique<ThreadPool>(options_.threads);
  // Pre-create the per-shard scan instruments so the per-query record path
  // (pool workers) never takes the registry's creation mutex.
  metrics_.ensure_shards(index_.num_shards());
}

namespace {

// Segment broadcast + deterministic global merge, parameterised over how
// one segment answers (unpacked digits or packed words — both land in the
// same kernel layer inside the backend).  The snapshot is immutable, so
// this reads it with no synchronisation at all.  on_shard(index, seconds)
// reports each shard's scan wall time to the per-shard metric families.
template <typename SearchSegment, typename OnShard>
TopKResult merged_topk(const IndexSnapshot& snap, int index_stages,
                       core::DigitMetric metric, int k,
                       SearchSegment&& search_segment, OnShard&& on_shard) {
  const auto t0 = std::chrono::steady_clock::now();
  TopKResult out;
  std::vector<core::TopKEntry> merged;
  merged.reserve(static_cast<std::size_t>(k) *
                 static_cast<std::size_t>(snap.segments));
  const double stages = static_cast<double>(index_stages);
  for (std::size_t shard_idx = 0; shard_idx < snap.shards.size();
       ++shard_idx) {
    const auto& shard = snap.shards[shard_idx];
    const auto shard_t0 = std::chrono::steady_clock::now();
    // A shard's segments share one physical bank: the bank answers them as
    // sequential passes, so latency/energy/passes add up within the shard.
    double shard_latency = 0.0, shard_energy = 0.0;
    int shard_passes = 0;
    for (const auto& seg : shard) {
      if (seg->rows() == 0) continue;
      const auto local = search_segment(seg->backend(), k);
      for (const auto& e : local.entries)
        merged.push_back({seg->global_id(e.row), e.score});
      // Modeled hardware: for mismatch-family metrics each segment is
      // costed by its own QueryCostModel hook at the measured mismatch
      // fraction (clamped — an L1-metric backend can report a mean score
      // above one per digit).  Similarity metrics have no mismatch
      // fraction, so their segments are costed at 0 — similarity backends
      // throw on anything else.
      const double mismatch_fraction =
          core::metric_is_mismatch_family(metric)
              ? std::clamp(local.mean_score / stages, 0.0, 1.0)
              : 0.0;
      const auto cost = seg->backend().query_cost(mismatch_fraction);
      shard_latency += cost.latency;
      shard_energy += cost.energy;
      shard_passes += cost.passes;
    }
    // Shards are physically parallel banks: latency is the slowest bank,
    // energy sums over banks, passes report the worst bank's fold count.
    out.modeled_latency = std::max(out.modeled_latency, shard_latency);
    out.modeled_energy += shard_energy;
    out.modeled_passes = std::max(out.modeled_passes, shard_passes);
    on_shard(static_cast<int>(shard_idx), seconds_since(shard_t0));
  }
  out.scan_seconds = seconds_since(t0);
  // Global merge under the same total order the segments used: score in the
  // metric's direction, global row id breaks ties.
  const auto t1 = std::chrono::steady_clock::now();
  const auto keep =
      std::min<std::size_t>(static_cast<std::size_t>(k), merged.size());
  std::partial_sort(merged.begin(),
                    merged.begin() + static_cast<std::ptrdiff_t>(keep),
                    merged.end(),
                    core::ScoreComparator{core::metric_order(metric)});
  merged.resize(keep);
  out.entries = std::move(merged);
  out.merge_seconds = seconds_since(t1);
  out.wall_seconds = seconds_since(t0);
  return out;
}

}  // namespace

TopKResult SearchEngine::run_query(const IndexSnapshot& snap,
                                   std::span<const int> query, int k) const {
  return merged_topk(snap, index_.stages(), index_.metric(), k,
                     [&](const core::SimilarityBackend& segment, int kk) {
                       return segment.search_topk(query, kk);
                     },
                     [this](int shard, double seconds) {
                       metrics_.record_shard_scan(shard, seconds);
                     });
}

TopKResult SearchEngine::run_query_packed(
    const IndexSnapshot& snap, std::span<const std::uint32_t> packed,
    int k) const {
  return merged_topk(snap, index_.stages(), index_.metric(), k,
                     [&](const core::SimilarityBackend& segment, int kk) {
                       return segment.search_topk_packed(packed, kk);
                     },
                     [this](int shard, double seconds) {
                       metrics_.record_shard_scan(shard, seconds);
                     });
}

void SearchEngine::run_tile_packed(const IndexSnapshot& snap,
                                   const core::DigitMatrix& queries, int first,
                                   int count, int k,
                                   std::span<TopKResult> out) const {
  const auto t0 = std::chrono::steady_clock::now();
  const double stages = static_cast<double>(index_.stages());
  const auto metric = index_.metric();
  const auto n = static_cast<std::size_t>(count);
  // Same cost folding as merged_topk, held per query: a shard's segments
  // add up as sequential bank passes, shards fold as parallel banks.
  std::vector<std::vector<core::TopKEntry>> merged(n);
  for (auto& m : merged)
    m.reserve(static_cast<std::size_t>(k) *
              static_cast<std::size_t>(snap.segments));
  std::vector<double> shard_latency(n), shard_energy(n);
  std::vector<int> shard_passes(n);
  for (std::size_t shard_idx = 0; shard_idx < snap.shards.size();
       ++shard_idx) {
    const auto& shard = snap.shards[shard_idx];
    const auto shard_t0 = std::chrono::steady_clock::now();
    std::fill(shard_latency.begin(), shard_latency.end(), 0.0);
    std::fill(shard_energy.begin(), shard_energy.end(), 0.0);
    std::fill(shard_passes.begin(), shard_passes.end(), 0);
    for (const auto& seg : shard) {
      if (seg->rows() == 0) continue;
      // The whole tile sweeps this segment in one call — the backend's
      // tiled scan streams the stored rows once, rescanning each cache-hot
      // block for every query of the tile.
      const auto locals =
          seg->backend().search_topk_packed_batch(queries, first, count, k);
      for (std::size_t q = 0; q < n; ++q) {
        const auto& local = locals[q];
        for (const auto& e : local.entries)
          merged[q].push_back({seg->global_id(e.row), e.score});
        const double mismatch_fraction =
            core::metric_is_mismatch_family(metric)
                ? std::clamp(local.mean_score / stages, 0.0, 1.0)
                : 0.0;
        const auto cost = seg->backend().query_cost(mismatch_fraction);
        shard_latency[q] += cost.latency;
        shard_energy[q] += cost.energy;
        shard_passes[q] += cost.passes;
      }
    }
    for (std::size_t q = 0; q < n; ++q) {
      out[q].modeled_latency = std::max(out[q].modeled_latency,
                                        shard_latency[q]);
      out[q].modeled_energy += shard_energy[q];
      out[q].modeled_passes = std::max(out[q].modeled_passes,
                                       shard_passes[q]);
    }
    // The tile swept this shard once; charge each query an even share so
    // the per-shard family counts one observation per query, same as the
    // per-query path.
    const double shard_share =
        seconds_since(shard_t0) / static_cast<double>(count);
    for (int q = 0; q < count; ++q)
      metrics_.record_shard_scan(static_cast<int>(shard_idx), shard_share);
  }
  // The scan served the whole tile at once; charge each query an even
  // share so per-query stage histograms stay meaningful.
  const double scan_share = seconds_since(t0) / static_cast<double>(count);
  for (std::size_t q = 0; q < n; ++q) {
    const auto t1 = std::chrono::steady_clock::now();
    auto& m = merged[q];
    const auto keep =
        std::min<std::size_t>(static_cast<std::size_t>(k), m.size());
    std::partial_sort(m.begin(),
                      m.begin() + static_cast<std::ptrdiff_t>(keep), m.end(),
                      core::ScoreComparator{core::metric_order(metric)});
    m.resize(keep);
    out[q].entries = std::move(m);
    out[q].scan_seconds = scan_share;
    out[q].merge_seconds = seconds_since(t1);
    out[q].wall_seconds = scan_share + out[q].merge_seconds;
  }
}

std::vector<TopKResult> SearchEngine::submit_batch(
    const core::DigitMatrix& queries, int k) {
  return submit_batch(index_.pin(), queries, k);
}

std::vector<TopKResult> SearchEngine::submit_batch(
    const std::shared_ptr<const IndexSnapshot>& snap,
    const core::DigitMatrix& queries, int k) {
  if (k < 1)
    throw std::invalid_argument("SearchEngine::submit_batch: k must be >= 1");
  if (queries.cols() != index_.stages())
    throw std::invalid_argument(
        "SearchEngine::submit_batch: queries have " +
        std::to_string(queries.cols()) + " digits, index stores " +
        std::to_string(index_.stages()));
  const auto t0 = std::chrono::steady_clock::now();
  const auto n = static_cast<std::size_t>(queries.rows());
  const auto stages = static_cast<std::size_t>(queries.cols());
  const IndexSnapshot& view = *snap;
  std::vector<TopKResult> results(n);
  // Packed fast path: when the batch's field width matches the index's
  // packing (and its digit alphabet fits), every query row is already the
  // exact word sequence the segments' kernel scans consume — hand the
  // packed words straight through, no unpack, no re-pack.
  const bool packed_compatible =
      queries.bits_per_digit() ==
          core::DigitMatrix::field_bits(index_.levels()) &&
      queries.levels() <= index_.levels();
  const auto tile = static_cast<std::size_t>(std::max(1, index_.query_tile()));
  if (packed_compatible && tile > 1) {
    // Tiled fast path: one task per query tile, each sweeping the segments
    // once for its whole tile (results are bit-identical to the per-query
    // path for any tile size — pinned by the runtime determinism tests).
    const auto out = std::span<TopKResult>(results);
    if (pool_) {
      std::vector<std::future<void>> pending;
      pending.reserve((n + tile - 1) / tile);
      for (std::size_t i = 0; i < n; i += tile) {
        const auto count = std::min(tile, n - i);
        pending.push_back(pool_->submit([this, &view, &queries, out, i, count,
                                         k] {
          run_tile_packed(view, queries, static_cast<int>(i),
                          static_cast<int>(count), k, out.subspan(i, count));
        }));
      }
      for (auto& f : pending) f.get();  // rethrows any task exception
    } else {
      for (std::size_t i = 0; i < n; i += tile) {
        const auto count = std::min(tile, n - i);
        run_tile_packed(view, queries, static_cast<int>(i),
                        static_cast<int>(count), k, out.subspan(i, count));
      }
    }
  } else if (packed_compatible) {
    if (pool_) {
      std::vector<std::future<void>> pending;
      pending.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        pending.push_back(pool_->submit([this, &view, &queries, &results, i,
                                         k] {
          results[i] = run_query_packed(
              view, queries.row_words(static_cast<int>(i)), k);
        }));
      }
      for (auto& f : pending) f.get();  // rethrows any task exception
    } else {
      for (std::size_t i = 0; i < n; ++i)
        results[i] = run_query_packed(
            view, queries.row_words(static_cast<int>(i)), k);
    }
  } else {
    // One unpack arena for the whole batch: task i owns the disjoint slice
    // [i*stages, (i+1)*stages), so no per-query heap allocation and no
    // sharing between pool workers.
    std::vector<int> arena(n * stages);
    const auto digits_of = [&](std::size_t i) {
      return std::span<int>(arena).subspan(i * stages, stages);
    };
    if (pool_) {
      std::vector<std::future<void>> pending;
      pending.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        pending.push_back(pool_->submit([this, &view, &queries, &results,
                                         &digits_of, i, k] {
          const auto digits = digits_of(i);
          queries.unpack_row_into(static_cast<int>(i), digits);
          results[i] = run_query(view, digits, k);
        }));
      }
      for (auto& f : pending) f.get();  // rethrows any task exception
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const auto digits = digits_of(i);
        queries.unpack_row_into(static_cast<int>(i), digits);
        results[i] = run_query(view, digits, k);
      }
    }
  }

  BatchStats stats;
  stats.queries = static_cast<int>(n);
  stats.wall_seconds = seconds_since(t0);
  for (const auto& r : results) {
    metrics_.record_query_wall(r.wall_seconds);
    // The engine owns the scan/merge stage histograms (it has the only
    // honest clocks for them); AmServer adds queue_wait/batch_wait on top.
    StageTimings stage_times;
    stage_times.scan = r.scan_seconds;
    stage_times.merge = r.merge_seconds;
    metrics_.record_stage_times(stage_times);
    stats.modeled_latency += r.modeled_latency;
    stats.modeled_energy += r.modeled_energy;
  }
  metrics_.record_batch(stats);
  metrics_.set_resident_index_bytes(view.resident_bytes());
  for (std::size_t s = 0; s < view.shards.size(); ++s)
    metrics_.set_shard_segments(static_cast<int>(s), view.shards[s].size());
  return results;
}

std::vector<TopKResult> SearchEngine::submit_batch(
    std::span<const std::vector<int>> queries, int k) {
  core::DigitMatrix packed(index_.stages(), index_.levels());
  for (const auto& q : queries) packed.append(q);  // validates digit range
  return submit_batch(packed, k);
}

}  // namespace tdam::runtime
