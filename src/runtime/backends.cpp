#include "runtime/backends.h"

#include <memory>
#include <stdexcept>

#include "am/behavioral.h"
#include "baselines/backends.h"
#include "core/cosine_backend.h"
#include "core/exact_backend.h"

namespace tdam::runtime {

core::BackendRegistry default_registry(const am::CalibrationResult& cal,
                                       const BackendOptions& options) {
  if (options.stages < 1)
    throw std::invalid_argument("default_registry: stages must be >= 1");
  if (options.array_rows < 1 || options.array_stages < 1)
    throw std::invalid_argument("default_registry: bad array geometry");
  const int levels = 1 << cal.bits;  // calibrate_chain always sets bits
  core::BackendRegistry reg;
  reg.add("behavioral", [cal, options] {
    return std::make_unique<am::BehavioralAm>(
        cal, options.stages, options.array_rows, options.array_stages);
  });
  reg.add("digital", [options, levels] {
    return std::make_unique<baselines::DigitalPopcountBackend>(
        options.stages, levels, options.array_rows);
  });
  reg.add("cam", [options, levels] {
    return std::make_unique<baselines::CrossbarCamBackend>(
        options.stages, levels, options.array_rows);
  });
  reg.add("exact", [options, levels] {
    return std::make_unique<core::ExactL1Backend>(
        options.stages, levels, core::DigitMetric::kMismatchCount);
  });
  // Similarity metrics over the same packed core + dot kernel; both fold
  // passes over the shared array_rows geometry.
  reg.add("cosine", [options, levels] {
    return std::make_unique<core::CosineBackend>(
        options.stages, levels,
        core::SimilarityArrayModel{.array_rows = options.array_rows});
  });
  reg.add("dot", [options, levels] {
    return std::make_unique<core::DotProductBackend>(
        options.stages, levels,
        core::SimilarityArrayModel{.array_rows = options.array_rows});
  });
  return reg;
}

}  // namespace tdam::runtime
