#include "runtime/backends.h"

#include <memory>
#include <stdexcept>

#include "am/behavioral.h"
#include "baselines/backends.h"
#include "core/cosine_backend.h"
#include "core/exact_backend.h"

namespace tdam::runtime {

core::BackendRegistry default_registry(const am::CalibrationResult& cal,
                                       const BackendOptions& options) {
  if (options.stages < 1)
    throw std::invalid_argument("default_registry: stages must be >= 1");
  if (options.array_rows < 1 || options.array_stages < 1)
    throw std::invalid_argument("default_registry: bad array geometry");
  if (options.query_tile < 1 || options.row_block < 0)
    throw std::invalid_argument("default_registry: bad scan tiling");
  const int levels = 1 << cal.bits;  // calibrate_chain always sets bits
  const core::ScanOptions scan{options.query_tile, options.row_block};
  core::BackendRegistry reg;
  reg.add("behavioral", [cal, options] {
    return std::make_unique<am::BehavioralAm>(
        cal, options.stages, options.array_rows, options.array_stages);
  });
  reg.add("digital", [options, levels, scan] {
    return std::make_unique<baselines::DigitalPopcountBackend>(
        options.stages, levels, options.array_rows,
        baselines::DigitalPopcountParams{}, scan);
  });
  reg.add("cam", [options, levels, scan] {
    return std::make_unique<baselines::CrossbarCamBackend>(
        options.stages, levels, options.array_rows,
        baselines::CrossbarCamParams{}, scan);
  });
  reg.add("exact", [options, levels, scan] {
    return std::make_unique<core::ExactL1Backend>(
        options.stages, levels, core::DigitMetric::kMismatchCount, scan);
  });
  // Similarity metrics over the same packed core + dot kernel; both fold
  // passes over the shared array_rows geometry.
  reg.add("cosine", [options, levels, scan] {
    return std::make_unique<core::CosineBackend>(
        options.stages, levels,
        core::SimilarityArrayModel{.array_rows = options.array_rows}, scan);
  });
  reg.add("dot", [options, levels, scan] {
    return std::make_unique<core::DotProductBackend>(
        options.stages, levels,
        core::SimilarityArrayModel{.array_rows = options.array_rows}, scan);
  });
  return reg;
}

}  // namespace tdam::runtime
