#include "runtime/backends.h"

#include <memory>
#include <stdexcept>

#include "am/behavioral.h"
#include "baselines/backends.h"
#include "core/exact_backend.h"

namespace tdam::runtime {

core::BackendRegistry default_registry(const am::CalibrationResult& cal,
                                       const BackendOptions& options) {
  if (options.stages < 1)
    throw std::invalid_argument("default_registry: stages must be >= 1");
  if (options.array_rows < 1 || options.array_stages < 1)
    throw std::invalid_argument("default_registry: bad array geometry");
  const int levels = 1 << cal.bits;  // calibrate_chain always sets bits
  core::BackendRegistry reg;
  reg.add("behavioral", [cal, options] {
    return std::make_unique<am::BehavioralAm>(
        cal, options.stages, options.array_rows, options.array_stages);
  });
  reg.add("digital", [options, levels] {
    return std::make_unique<baselines::DigitalPopcountBackend>(
        options.stages, levels, options.array_rows);
  });
  reg.add("cam", [options, levels] {
    return std::make_unique<baselines::CrossbarCamBackend>(
        options.stages, levels, options.array_rows);
  });
  reg.add("exact", [options, levels] {
    return std::make_unique<core::ExactL1Backend>(
        options.stages, levels, core::DigitMetric::kMismatchCount);
  });
  return reg;
}

}  // namespace tdam::runtime
