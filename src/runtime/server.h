// Asynchronous serving front-end over the sharded TD-AM engine.
//
// The paper answers one query in a single pulse propagation across M
// parallel chains; the serving layer must therefore never serialize callers
// behind a blocking batch API.  AmServer accepts individual queries from
// any number of threads (`submit` returns a std::future immediately),
// coalesces them into dynamic micro-batches on a Scheduler (flush on
// max_batch or max_delay, whichever first), and runs each batch on the
// owned SearchEngine from a single dispatcher thread.
//
// Degradation is explicit, observable, and per-query:
//  * admission   — the Scheduler's bounded queue applies kBlock / kReject /
//    kShedOldest; bounced queries resolve with QueryStatus::kRejected /
//    kShed and count in ServingMetrics;
//  * deadlines   — checked at dequeue: a query whose deadline passed while
//    queued resolves with QueryStatus::kDeadlineExpired WITHOUT touching
//    the shards (load shedding proper), and counts in metrics;
//  * answered    — QueryStatus::kOk with the engine's TopKResult, stamped
//    with the index generation it was computed against.
//
// Mutation while live needs no lock at this layer: the segmented index
// publishes immutable snapshots, so store() and clear() forward straight
// to it and return without waiting for the in-flight micro-batch — and the
// batch never waits for them.  The dispatcher pins one snapshot per
// micro-batch (a single atomic load) and stamps its generation on every
// answer, so a result with generation G was computed against exactly the
// store state after the G-th mutation; queries dispatched after a write
// see the new epoch.
//
// shutdown() (and the destructor) closes admission, drains every queued
// query (answered or expired, never silently dropped), and joins the
// dispatcher.
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/digit_matrix.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "runtime/scheduler.h"
#include "runtime/sharded_index.h"

namespace tdam::runtime {

struct ServerOptions {
  EngineOptions engine;         // worker threads inside each micro-batch
  SchedulerOptions scheduler;   // batching + admission control
  // Tracing mode / sampling / ring capacity; defaults come from the
  // TDAM_TRACE* environment (see obs::TraceConfig::from_env) so deployments
  // flip tracing without code changes, and an explicit value here overrides
  // the environment per server.
  obs::TraceConfig trace = obs::TraceConfig::from_env();
};

class AmServer {
 public:
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  // The server serves `index` and registers the index's segment/compaction
  // instruments in its metrics registry.  The index is internally
  // synchronized, so concurrent mutation through other references is safe;
  // this server's result generations simply interleave with it.
  AmServer(ShardedIndex& index, ServerOptions options = {});
  ~AmServer();

  AmServer(const AmServer&) = delete;
  AmServer& operator=(const AmServer&) = delete;

  // Asynchronously answers one query of index().stages() digits with its
  // global top-k.  Validates digits/k synchronously (throws
  // std::invalid_argument); admission-control and deadline outcomes arrive
  // through the future's QueryStatus instead.  Thread-safe.
  std::future<ServedResult> submit(
      std::span<const int> query, int k,
      std::chrono::steady_clock::time_point deadline = kNoDeadline);

  // Wire-path form: `seed` is a partially stamped span carrying the stages
  // that happened before the query reached this server (io_recv / decode /
  // submit_queue, with enqueue_ns = the frame-receipt instant as the base
  // every later stamp offsets from).  The server assigns the trace id,
  // keeps the seed's base, and stamps onward from it — so one span
  // reconciles wire time against queue/dispatch/scan time.  A wire span
  // (seed.wire()) is NOT recorded at the server-side terminal transition:
  // it travels back through ServedResult::span for the TCP front-end to
  // finish (completion_wait / encode / io_send) and record.
  std::future<ServedResult> submit(
      std::span<const int> query, int k,
      std::chrono::steady_clock::time_point deadline, obs::SpanRecord seed);

  // Packed form: one future per row of `queries` (validated against the
  // index geometry), all sharing one deadline.
  std::vector<std::future<ServedResult>> submit(
      const core::DigitMatrix& queries, int k,
      std::chrono::steady_clock::time_point deadline = kNoDeadline);

  // Mutations apply immediately (bumping the index generation) without
  // draining — or being blocked by — the in-flight micro-batch.  Safe
  // while serving; throws what the index throws.
  int store(std::span<const int> digits);
  void clear();
  // The published epoch: lock-free, one atomic snapshot load.
  std::uint64_t generation() const;

  const ShardedIndex& index() const { return index_; }
  const ServingMetrics& metrics() const { return engine_.metrics(); }
  // Mutable view, letting co-located components (e.g. the Layer-8 TCP
  // front-end) register their own instruments in the same registry so one
  // scrape covers the whole serving stack.
  ServingMetrics& metrics() { return engine_.metrics(); }
  // Sampled per-query spans (enqueue → admit → batch-form → dispatch →
  // scan/merge → fulfill); see obs::FlightRecorder for the sampling rules.
  const obs::FlightRecorder& recorder() const { return recorder_; }
  // Mutable view for the TCP front-end: it seeds wire spans from
  // next_trace_id()'s generator state and records the deferred wire spans
  // into this same ring, so /traces covers both in-process and wire
  // queries.
  obs::FlightRecorder& recorder() { return recorder_; }
  // Slow-query flight recorder: every query whose wall latency crossed
  // ServerOptions::trace.slow_threshold_ns is captured with its full span
  // regardless of 1-in-N sampling.  Disabled (threshold < 0) by default.
  const obs::SlowQueryLog& slow_log() const { return slow_; }
  obs::SlowQueryLog& slow_log() { return slow_; }
  const ServerOptions& options() const { return options_; }

  // Closes admission, serves/expires everything still queued, joins the
  // dispatcher.  Idempotent; called by the destructor.
  void shutdown();

 private:
  void serve_loop();
  void run_batch(std::vector<PendingQuery> batch);

  ShardedIndex& index_;
  ServerOptions options_;
  SearchEngine engine_;
  obs::FlightRecorder recorder_;  // before scheduler_: it holds a pointer
  obs::SlowQueryLog slow_;        // likewise
  Scheduler scheduler_;
  std::thread dispatcher_;
};

}  // namespace tdam::runtime
