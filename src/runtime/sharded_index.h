// A stored-vector set partitioned across N similarity backends.
//
// Each shard models one physically independent bank of whatever engine the
// registry built ("behavioral" TD-AM chains, "digital" comparator lanes,
// "cam" crossbars, the "exact" software reference), so a query can be
// broadcast to all shards at once (in hardware: in parallel; in software: on
// the engine's thread pool) and the per-shard winners merged.  The index
// owns the global-row-id <-> (shard, local row) mapping; ids are assigned in
// store order starting at 0 and are what SearchEngine reports back.
//
// The shards ARE the storage: the index keeps no unpacked duplicate of the
// stored vectors (the pre-refactor version held every digit twice), only the
// 8-byte location record per row.  Snapshots read back through the shards'
// packed matrices.
//
// The index is not internally synchronized.  For concurrent serving it
// carries a generation counter: every mutation (store/clear) bumps it, and
// AmServer uses a writer lock to drain in-flight batches before mutating —
// a query result stamped with generation G was computed against exactly the
// store state after the G-th mutation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.h"
#include "core/registry.h"

namespace tdam::runtime {

// Where the next stored vector lands.
//  * kRoundRobin     — shard = global_id % num_shards (deterministic strides).
//  * kLeastLoaded    — the shard with the fewest rows, lowest index on ties
//    (capacity-aware: keeps banks balanced under interleaved clears/stores).
enum class Placement { kRoundRobin, kLeastLoaded };

// Construction knobs, mirroring BackendOptions/EngineOptions: which registry
// entry to instantiate, how many shards, and where stores land.
struct ShardedIndexOptions {
  std::string backend = "behavioral";
  int shards = 1;
  Placement placement = Placement::kRoundRobin;
};

class ShardedIndex {
 public:
  // Creates `options.shards` fresh instances of `options.backend` through
  // the registry.  Throws std::invalid_argument (naming the offending
  // value) when shards < 1, and whatever the registry throws for an
  // unknown backend.
  ShardedIndex(const core::BackendRegistry& registry,
               ShardedIndexOptions options);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int stages() const { return shards_.front()->stages(); }
  int levels() const { return shards_.front()->levels(); }
  int size() const { return static_cast<int>(locations_.size()); }
  const std::string& backend_name() const { return options_.backend; }
  Placement placement() const { return options_.placement; }

  // Stores one digit vector; returns its global row id.  The backend
  // validates length and digit range.
  int store(std::span<const int> digits);

  // Drops every stored vector from every shard.
  void clear();

  // Count of mutations (store/clear) applied so far.  Not synchronized —
  // readers that race writers must hold whatever lock mediates mutation
  // (AmServer::generation() reads it under the serving lock).
  std::uint64_t generation() const { return generation_; }

  const core::SimilarityBackend& shard(int s) const;
  // Rows held by shard `s`.
  int shard_size(int s) const;
  // Global id of local row `local` in shard `s`.
  int global_row(int s, int local) const;

  // Read-back of one stored vector by global row id (through its shard's
  // packed storage).
  std::vector<int> row(int global) const;

  // Copy of every stored vector, indexed by global row id — the brute-force
  // reference path for determinism tests and for re-sharding.
  std::vector<std::vector<int>> snapshot() const;

  // Bytes resident across all shards for the stored set.
  std::size_t resident_bytes() const;

 private:
  int pick_shard() const;

  ShardedIndexOptions options_;
  std::vector<std::unique_ptr<core::SimilarityBackend>> shards_;
  std::vector<std::vector<int>> global_ids_;        // per shard: local -> global
  std::vector<std::pair<int, int>> locations_;      // global -> (shard, local)
  std::uint64_t generation_ = 0;
};

}  // namespace tdam::runtime
