// A stored-vector set partitioned across N similarity-backend shards, with
// an epoch-published segment list per shard for lock-free reads under live
// ingest.
//
// Each shard models one physically independent bank of whatever engine the
// registry built ("behavioral" TD-AM chains, "digital" comparator lanes,
// "cam" crossbars, the "exact" software reference), so a query can be
// broadcast to all shards at once and the per-shard winners merged.  The
// index owns the global-row-id assignment; ids are assigned in store order
// starting at 0 and are what SearchEngine reports back.
//
// Storage is segmented: a shard is a list of immutable *sealed* segments
// (packed DigitMatrix runs, each routed through the same kernel fast path
// as a single bank) plus one small *active delta* segment absorbing
// store() calls.  Mutation is copy-on-write on the delta only — store()
// rebuilds the delta segment with the new row, then publishes a fresh
// IndexSnapshot through one atomic shared_ptr.  Readers pin() a snapshot
// with a single atomic load and scan it with no lock whatsoever; the last
// reader to release a retired segment frees it (shared_ptr refcount is the
// epoch-reclamation scheme).  store() never waits for in-flight queries
// and queries never wait for store().
//
// When the delta reaches `seal_rows` it is moved — already immutable, no
// rebuild — onto the sealed list, and a background compaction thread
// merges sealed runs back into one large segment once a shard accumulates
// `compact_min_segments` of them.  Compaction changes layout, not
// contents: the published generation does not move, and a quiesced,
// compacted shard is bit-identical to the seed's single mutable bank.
//
// The snapshot's generation counts mutations (store/clear) and is the
// epoch AmServer stamps on every ServedResult: a result with generation G
// was computed against exactly the store state after the G-th mutation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/segment.h"

namespace tdam::runtime {

class ServingMetrics;

// Where the next stored vector lands.
//  * kRoundRobin     — shard = global_id % num_shards (deterministic strides).
//  * kLeastLoaded    — the shard with the fewest rows, lowest index on ties
//    (capacity-aware: keeps banks balanced under interleaved clears/stores).
enum class Placement { kRoundRobin, kLeastLoaded };

// Construction knobs, mirroring BackendOptions/EngineOptions: which registry
// entry to instantiate, how many shards, where stores land, and the segment
// lifecycle thresholds.
struct ShardedIndexOptions {
  std::string backend = "behavioral";
  int shards = 1;
  Placement placement = Placement::kRoundRobin;
  // Delta rows that trigger sealing.  Also bounds the copy-on-write cost of
  // one store() (the delta is rebuilt per store, never the sealed runs).
  int seal_rows = 1024;
  // Sealed segments per shard that wake the background compactor.
  int compact_min_segments = 4;
  // Tests that want a deterministic segment layout disable the background
  // thread and call compact_now() themselves.
  bool background_compaction = true;
};

// One immutable view of the whole index: per-shard segment lists plus the
// epoch they were published under.  Everything a query touches lives here,
// so holding the shared_ptr is the only pin a reader needs.
struct IndexSnapshot {
  // shards[s] lists shard s's segments in ascending global-id order
  // (sealed runs first, the unsealed delta — if any — last).
  std::vector<std::vector<std::shared_ptr<const core::Segment>>> shards;
  std::uint64_t generation = 0;  // mutations applied when this was published
  int rows = 0;                  // global ids are exactly [0, rows)
  int segments = 0;              // total segments across shards
  int delta_rows = 0;            // rows still in unsealed delta segments

  int num_shards() const { return static_cast<int>(shards.size()); }
  // Bytes resident in the shards' packed storage (same accounting as the
  // seed's single-bank index: backend payload, not id bookkeeping).
  std::size_t resident_bytes() const;
};

class ShardedIndex {
 public:
  // Creates an empty index of `options.shards` shards of `options.backend`.
  // Throws std::invalid_argument (naming the offending value) when a knob
  // is out of range, and whatever the registry throws for an unknown
  // backend.  Starts the compaction thread unless background_compaction is
  // off.
  ShardedIndex(const core::BackendRegistry& registry,
               ShardedIndexOptions options);
  ~ShardedIndex();

  // Persists the current published snapshot to `path` as one mmap-able
  // segment file (core/index_io.h): every sealed segment's packed payload
  // and id run verbatim, the unsealed delta as an ordinary segment (it
  // loads back sealed).  Concurrent stores are fine — they land in later
  // snapshots, not this file.  Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  // Rebuilds an index from a save()d file: maps it read-only and hands
  // each segment's payload to a fresh backend by reference
  // (SimilarityBackend::adopt_matrix over a frozen zero-copy
  // DigitMatrix::from_external view), so a cold multi-GB index republishes
  // in milliseconds — no digit is unpacked or copied.  The file fixes the
  // backend name and shard count; `options` supplies the rest (placement,
  // seal/compaction thresholds).  `registry` must build that backend with
  // the file's stages/levels geometry, else this throws naming both.
  // Queries serve straight off the page cache; the mapping is released
  // when the last reader of its last segment lets go (compaction migrates
  // segments into owned storage and then drops the pin).  The loaded index
  // restarts at generation 0.
  static ShardedIndex load(const core::BackendRegistry& registry,
                           const std::string& path,
                           ShardedIndexOptions options = {});

  ShardedIndex(ShardedIndex&&) noexcept;
  ShardedIndex& operator=(ShardedIndex&&) noexcept;

  int num_shards() const;
  int stages() const;
  int levels() const;
  // The backend's digit metric — fixes the score ordering every consumer
  // (engine merge, wire replies, benches) must use for this index.
  core::DigitMetric metric() const;
  // Queries per cache-hot tile of the backend's batch scan (>= 1; 1 means
  // the backend has no tiled path).  SearchEngine sizes its batch tasks by
  // this so a multi-query batch streams each segment once per tile.
  int query_tile() const;
  int size() const;
  const std::string& backend_name() const;
  Placement placement() const;

  // Pins the current published snapshot: one atomic shared_ptr load, no
  // lock.  The returned view is immutable and stays valid for as long as
  // the pointer is held, no matter how many stores/clears/compactions land
  // after it.
  std::shared_ptr<const IndexSnapshot> pin() const;

  // Stores one digit vector; returns its global row id.  The backend
  // validates length and digit range before any state changes.  Safe to
  // call concurrently with pin()/queries (writers serialize on an internal
  // mutex; readers are never blocked).
  int store(std::span<const int> digits);

  // Drops every stored vector from every shard.  Ids restart at 0;
  // already-pinned snapshots keep serving the old rows.
  void clear();

  // Count of mutations (store/clear) applied so far — the published epoch.
  // Lock-free: reads the current snapshot.
  std::uint64_t generation() const;

  // Synchronously merges every shard down to one sealed segment (the
  // deterministic layout tests and maintenance windows want).  Contents
  // and generation are unchanged.
  void compact_now();

  // Background + compact_now() merges completed so far.
  std::uint64_t compactions() const;

  // Sink for segment gauges and compaction timings; pass nullptr to
  // detach.  AmServer attaches its engine's metrics here.
  void set_metrics(ServingMetrics* metrics);

  // Rows held by shard `s`.
  int shard_size(int s) const;
  // Global id of local row `local` in shard `s` (locals count across the
  // shard's segments in published order).
  int global_row(int s, int local) const;

  // Read-back of one stored vector by global row id (through its shard's
  // packed storage).
  std::vector<int> row(int global) const;

  // Copy of every stored vector, indexed by global row id — the brute-force
  // reference path for determinism tests and for re-sharding.
  std::vector<std::vector<int>> snapshot() const;

  // Bytes resident across all shards for the stored set.
  std::size_t resident_bytes() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tdam::runtime
