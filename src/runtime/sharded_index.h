// A stored-vector set partitioned across N behavioural TD-AM arrays.
//
// Each shard models one physically independent chain bank, so a query can be
// broadcast to all shards at once (in hardware: in parallel; in software: on
// the engine's thread pool) and the per-shard winners merged.  The index owns
// the global-row-id <-> (shard, local row) mapping; ids are assigned in store
// order starting at 0 and are what SearchEngine reports back to callers.
#pragma once

#include <span>
#include <vector>

#include "am/behavioral.h"

namespace tdam::runtime {

// Where the next stored vector lands.
//  * kRoundRobin     — shard = global_id % num_shards (deterministic strides).
//  * kLeastLoaded    — the shard with the fewest rows, lowest index on ties
//    (capacity-aware: keeps banks balanced under interleaved clears/stores).
enum class Placement { kRoundRobin, kLeastLoaded };

class ShardedIndex {
 public:
  ShardedIndex(const am::CalibrationResult& cal, int shards, int stages,
               Placement placement = Placement::kRoundRobin);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int stages() const { return stages_; }
  int size() const { return static_cast<int>(rows_.size()); }  // global rows
  Placement placement() const { return placement_; }
  const am::CalibrationResult& calibration() const {
    return shards_.front().calibration();
  }

  // Stores one digit vector; returns its global row id.
  int store(std::span<const int> digits);

  // Drops every stored vector from every shard.
  void clear();

  const am::BehavioralAm& shard(int s) const;
  // Rows held by shard `s`.
  int shard_size(int s) const;
  // Global id of local row `local` in shard `s`.
  int global_row(int s, int local) const;

  // Copy of every stored vector, indexed by global row id — the brute-force
  // reference path for determinism tests and for re-sharding.
  std::vector<std::vector<int>> snapshot() const { return rows_; }

 private:
  int pick_shard() const;

  int stages_;
  Placement placement_;
  std::vector<am::BehavioralAm> shards_;
  std::vector<std::vector<int>> global_ids_;  // per shard: local row -> global
  std::vector<std::vector<int>> rows_;        // global id -> digits
};

}  // namespace tdam::runtime
