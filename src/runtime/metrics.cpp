#include "runtime/metrics.h"

#include <algorithm>

#include "util/table.h"

namespace tdam::runtime {

ServingMetrics::ServingMetrics(double latency_hi, std::size_t bins,
                               std::size_t batch_hi)
    : wall_(0.0, latency_hi, bins),
      batch_sizes_(0.0, static_cast<double>(batch_hi), batch_hi) {}

void ServingMetrics::record_query_wall(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  wall_.add(seconds);
}

void ServingMetrics::record_batch(const BatchStats& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  queries_ += static_cast<std::size_t>(batch.queries);
  wall_seconds_ += batch.wall_seconds;
  modeled_latency_ += batch.modeled_latency;
  modeled_energy_ += batch.modeled_energy;
  batch_sizes_.add(static_cast<double>(batch.queries));
}

void ServingMetrics::record_rejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

void ServingMetrics::record_shed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++shed_;
}

void ServingMetrics::record_expired() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++expired_;
}

void ServingMetrics::set_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_depth_ = depth;
  peak_queue_depth_ = std::max(peak_queue_depth_, depth);
}

void ServingMetrics::set_resident_index_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  resident_index_bytes_ = bytes;
}

void ServingMetrics::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  wall_ = Histogram(wall_.lo(), wall_.hi(), wall_.bins());
  batch_sizes_ =
      Histogram(batch_sizes_.lo(), batch_sizes_.hi(), batch_sizes_.bins());
  queries_ = 0;
  batches_ = 0;
  wall_seconds_ = 0.0;
  modeled_latency_ = 0.0;
  modeled_energy_ = 0.0;
  rejected_ = 0;
  shed_ = 0;
  expired_ = 0;
  queue_depth_ = 0;
  peak_queue_depth_ = 0;
  resident_index_bytes_ = 0;
}

std::size_t ServingMetrics::queries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queries_;
}

std::size_t ServingMetrics::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

double ServingMetrics::wall_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wall_seconds_;
}

double ServingMetrics::qps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wall_seconds_ <= 0.0) return 0.0;
  return static_cast<double>(queries_) / wall_seconds_;
}

double ServingMetrics::wall_quantile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wall_.quantile(p);
}

double ServingMetrics::batch_size_quantile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batch_sizes_.quantile(p);
}

std::size_t ServingMetrics::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::size_t ServingMetrics::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::size_t ServingMetrics::expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return expired_;
}

std::size_t ServingMetrics::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_depth_;
}

std::size_t ServingMetrics::peak_queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_queue_depth_;
}

std::size_t ServingMetrics::resident_index_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_index_bytes_;
}

double ServingMetrics::modeled_latency_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return modeled_latency_;
}

double ServingMetrics::modeled_energy_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return modeled_energy_;
}

double ServingMetrics::modeled_latency_per_query() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queries_ == 0) return 0.0;
  return modeled_latency_ / static_cast<double>(queries_);
}

double ServingMetrics::modeled_energy_per_query() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queries_ == 0) return 0.0;
  return modeled_energy_ / static_cast<double>(queries_);
}

std::string ServingMetrics::summary_table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Table t({"metric", "value"});
  t.add_row({"queries", std::to_string(queries_)});
  t.add_row({"batches", std::to_string(batches_)});
  t.add_row({"wall time (s)", Table::fmt(wall_seconds_)});
  const double qps = wall_seconds_ > 0.0
                         ? static_cast<double>(queries_) / wall_seconds_
                         : 0.0;
  t.add_row({"throughput (QPS)", Table::fmt(qps)});
  t.add_row({"wall p50 (us)", Table::fmt(wall_.quantile(0.50) * 1e6)});
  t.add_row({"wall p95 (us)", Table::fmt(wall_.quantile(0.95) * 1e6)});
  t.add_row({"wall p99 (us)", Table::fmt(wall_.quantile(0.99) * 1e6)});
  t.add_row({"batch size p50", Table::fmt(batch_sizes_.quantile(0.50))});
  t.add_row({"batch size p99", Table::fmt(batch_sizes_.quantile(0.99))});
  t.add_row({"queue depth (now/peak)", std::to_string(queue_depth_) + "/" +
                                           std::to_string(peak_queue_depth_)});
  t.add_row({"rejected", std::to_string(rejected_)});
  t.add_row({"shed", std::to_string(shed_)});
  t.add_row({"deadline expired", std::to_string(expired_)});
  t.add_row({"modeled HW latency/query (ns)",
             Table::fmt(queries_ == 0 ? 0.0
                                      : modeled_latency_ /
                                            static_cast<double>(queries_) *
                                            1e9)});
  t.add_row({"modeled HW energy/query (pJ)",
             Table::fmt(queries_ == 0 ? 0.0
                                      : modeled_energy_ /
                                            static_cast<double>(queries_) *
                                            1e12)});
  t.add_row({"modeled HW energy total (nJ)", Table::fmt(modeled_energy_ * 1e9)});
  t.add_row({"resident index (KiB)",
             Table::fmt(static_cast<double>(resident_index_bytes_) / 1024.0)});
  return t.render();
}

}  // namespace tdam::runtime
