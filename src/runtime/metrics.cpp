#include "runtime/metrics.h"

#include "util/table.h"

namespace tdam::runtime {

ServingMetrics::ServingMetrics(double latency_hi, std::size_t bins)
    : wall_(0.0, latency_hi, bins) {}

void ServingMetrics::record_query_wall(double seconds) { wall_.add(seconds); }

void ServingMetrics::record_batch(const BatchStats& batch) {
  ++batches_;
  queries_ += static_cast<std::size_t>(batch.queries);
  wall_seconds_ += batch.wall_seconds;
  modeled_latency_ += batch.modeled_latency;
  modeled_energy_ += batch.modeled_energy;
}

void ServingMetrics::reset() {
  wall_ = Histogram(wall_.lo(), wall_.hi(), wall_.bins());
  queries_ = 0;
  batches_ = 0;
  wall_seconds_ = 0.0;
  modeled_latency_ = 0.0;
  modeled_energy_ = 0.0;
  resident_index_bytes_ = 0;
}

double ServingMetrics::qps() const {
  if (wall_seconds_ <= 0.0) return 0.0;
  return static_cast<double>(queries_) / wall_seconds_;
}

double ServingMetrics::modeled_latency_per_query() const {
  if (queries_ == 0) return 0.0;
  return modeled_latency_ / static_cast<double>(queries_);
}

double ServingMetrics::modeled_energy_per_query() const {
  if (queries_ == 0) return 0.0;
  return modeled_energy_ / static_cast<double>(queries_);
}

std::string ServingMetrics::summary_table() const {
  Table t({"metric", "value"});
  t.add_row({"queries", std::to_string(queries_)});
  t.add_row({"batches", std::to_string(batches_)});
  t.add_row({"wall time (s)", Table::fmt(wall_seconds_)});
  t.add_row({"throughput (QPS)", Table::fmt(qps())});
  t.add_row({"wall p50 (us)", Table::fmt(wall_quantile(0.50) * 1e6)});
  t.add_row({"wall p95 (us)", Table::fmt(wall_quantile(0.95) * 1e6)});
  t.add_row({"wall p99 (us)", Table::fmt(wall_quantile(0.99) * 1e6)});
  t.add_row({"modeled HW latency/query (ns)",
             Table::fmt(modeled_latency_per_query() * 1e9)});
  t.add_row({"modeled HW energy/query (pJ)",
             Table::fmt(modeled_energy_per_query() * 1e12)});
  t.add_row({"modeled HW energy total (nJ)",
             Table::fmt(modeled_energy_total() * 1e9)});
  t.add_row({"resident index (KiB)",
             Table::fmt(static_cast<double>(resident_index_bytes_) / 1024.0)});
  return t.render();
}

}  // namespace tdam::runtime
