#include "runtime/metrics.h"

#include "util/table.h"

namespace tdam::runtime {

namespace {
// Lower edge of every exponential latency histogram: 1 µs.  Faster samples
// count as underflow (folded into the first Prometheus bucket), which is
// exactly the "effectively instant" population.
constexpr double kLatencyLo = 1e-6;
}  // namespace

ServingMetrics::ServingMetrics(double latency_hi, std::size_t bins,
                               std::size_t batch_hi)
    : latency_hi_(latency_hi) {
  queries_ = &registry_.counter("tdam_serving_queries_total",
                                "Queries completed by the engine");
  batches_ = &registry_.counter("tdam_serving_batches_total",
                                "Micro-batches dispatched to the engine");
  wall_seconds_ = &registry_.counter(
      "tdam_serving_wall_seconds_total",
      "Cumulative batch wall time (submit to last result)");
  rejected_ = &registry_.counter("tdam_serving_rejected_total",
                                 "Queries bounced by admission control");
  shed_ = &registry_.counter("tdam_serving_shed_total",
                             "Queued queries evicted by shed-oldest");
  expired_ = &registry_.counter("tdam_serving_deadline_expired_total",
                                "Queries whose deadline passed before dispatch");
  modeled_latency_ = &registry_.counter(
      "tdam_serving_modeled_latency_seconds_total",
      "Summed modeled TD-AM hardware latency");
  modeled_energy_ = &registry_.counter(
      "tdam_serving_modeled_energy_joules_total",
      "Summed modeled TD-AM hardware energy");
  queue_depth_ = &registry_.gauge("tdam_serving_queue_depth",
                                  "Queries waiting in the admission queue");
  peak_queue_depth_ =
      &registry_.gauge("tdam_serving_queue_depth_peak",
                       "Admission-queue high-water mark since reset");
  resident_index_bytes_ =
      &registry_.gauge("tdam_serving_resident_index_bytes",
                       "Resident bytes of the served (packed) index");
  segments_ = &registry_.gauge("tdam_serving_segments",
                               "Segments in the published index snapshot");
  delta_rows_ = &registry_.gauge("tdam_serving_delta_rows",
                                 "Rows in unsealed delta segments");
  compactions_ = &registry_.counter("tdam_serving_compactions_total",
                                    "Segment compaction merges completed");
  compacted_rows_ = &registry_.counter(
      "tdam_serving_compacted_rows_total",
      "Rows rewritten into merged segments by compaction");
  compaction_ = &registry_.exponential_histogram(
      "tdam_serving_compaction_seconds", "Per-merge compaction duration",
      kLatencyLo, 1.0, bins);
  wall_ = &registry_.exponential_histogram(
      "tdam_serving_wall_latency_seconds", "Per-query wall latency",
      kLatencyLo, latency_hi, bins);
  batch_sizes_ = &registry_.histogram("tdam_serving_batch_size",
                                      "Queries per micro-batch", 0.0,
                                      static_cast<double>(batch_hi), batch_hi);
  const char* stage_help = "Per-query serving-stage duration";
  queue_wait_ = &registry_.exponential_histogram(
      "tdam_serving_stage_seconds", stage_help, kLatencyLo, latency_hi, bins,
      {{"stage", "queue_wait"}});
  batch_wait_ = &registry_.exponential_histogram(
      "tdam_serving_stage_seconds", stage_help, kLatencyLo, latency_hi, bins,
      {{"stage", "batch_wait"}});
  scan_ = &registry_.exponential_histogram(
      "tdam_serving_stage_seconds", stage_help, kLatencyLo, latency_hi, bins,
      {{"stage", "scan"}});
  merge_ = &registry_.exponential_histogram(
      "tdam_serving_stage_seconds", stage_help, kLatencyLo, latency_hi, bins,
      {{"stage", "merge"}});
}

void ServingMetrics::record_query_wall(double seconds) {
  wall_->observe(seconds);
}

void ServingMetrics::record_stage_times(const StageTimings& stages) {
  if (stages.queue_wait >= 0.0) queue_wait_->observe(stages.queue_wait);
  if (stages.batch_wait >= 0.0) batch_wait_->observe(stages.batch_wait);
  if (stages.scan >= 0.0) scan_->observe(stages.scan);
  if (stages.merge >= 0.0) merge_->observe(stages.merge);
}

void ServingMetrics::record_batch(const BatchStats& batch) {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  batches_->add(1.0);
  queries_->add(static_cast<double>(batch.queries));
  wall_seconds_->add(batch.wall_seconds);
  modeled_latency_->add(batch.modeled_latency);
  modeled_energy_->add(batch.modeled_energy);
  batch_sizes_->observe(static_cast<double>(batch.queries));
}

void ServingMetrics::record_rejected() { rejected_->add(1.0); }

void ServingMetrics::record_shed() { shed_->add(1.0); }

void ServingMetrics::record_expired() { expired_->add(1.0); }

void ServingMetrics::set_queue_depth(std::size_t depth) {
  const auto d = static_cast<double>(depth);
  queue_depth_->set(d);
  peak_queue_depth_->max(d);
}

void ServingMetrics::set_resident_index_bytes(std::size_t bytes) {
  resident_index_bytes_->set(static_cast<double>(bytes));
}

void ServingMetrics::set_segment_stats(std::size_t segments,
                                       std::size_t delta_rows) {
  segments_->set(static_cast<double>(segments));
  delta_rows_->set(static_cast<double>(delta_rows));
}

void ServingMetrics::record_compaction(double seconds, std::size_t rows) {
  compactions_->add(1.0);
  compacted_rows_->add(static_cast<double>(rows));
  compaction_->observe(seconds);
}

void ServingMetrics::ensure_shards(int shards) {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  // Modest bucket count per shard: the per-shard families exist to expose
  // tail *shape* (compaction's effect), not to re-derive exact quantiles,
  // and a 32-shard index would otherwise dominate the scrape.
  constexpr std::size_t kShardBins = 128;
  for (int s = static_cast<int>(shard_scan_.size()); s < shards; ++s) {
    const std::string label = std::to_string(s);
    shard_scan_.push_back(&registry_.exponential_histogram(
        "tdam_serving_shard_scan_seconds",
        "Per-query scan time spent in one shard", kLatencyLo, latency_hi_,
        kShardBins, {{"shard", label}}));
    shard_segments_.push_back(&registry_.gauge(
        "tdam_serving_shard_segments",
        "Segments in one shard of the scanned snapshot", {{"shard", label}}));
  }
}

void ServingMetrics::record_shard_scan(int shard, double seconds) {
  if (shard < 0 || static_cast<std::size_t>(shard) >= shard_scan_.size())
    return;
  shard_scan_[static_cast<std::size_t>(shard)]->observe(seconds);
}

void ServingMetrics::set_shard_segments(int shard, std::size_t segments) {
  if (shard < 0 || static_cast<std::size_t>(shard) >= shard_segments_.size())
    return;
  shard_segments_[static_cast<std::size_t>(shard)]->set(
      static_cast<double>(segments));
}

void ServingMetrics::reset() {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  registry_.reset();
}

ServingMetrics::Snapshot ServingMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  Snapshot s;
  s.queries = static_cast<std::size_t>(queries_->value());
  s.batches = static_cast<std::size_t>(batches_->value());
  s.wall_seconds = wall_seconds_->value();
  s.qps = s.wall_seconds > 0.0
              ? static_cast<double>(s.queries) / s.wall_seconds
              : 0.0;
  s.rejected = static_cast<std::size_t>(rejected_->value());
  s.shed = static_cast<std::size_t>(shed_->value());
  s.expired = static_cast<std::size_t>(expired_->value());
  s.queue_depth = static_cast<std::size_t>(queue_depth_->value());
  s.peak_queue_depth = static_cast<std::size_t>(peak_queue_depth_->value());
  s.resident_index_bytes =
      static_cast<std::size_t>(resident_index_bytes_->value());
  s.segments = static_cast<std::size_t>(segments_->value());
  s.delta_rows = static_cast<std::size_t>(delta_rows_->value());
  s.compactions = static_cast<std::size_t>(compactions_->value());
  s.compacted_rows = static_cast<std::size_t>(compacted_rows_->value());
  s.modeled_latency_total = modeled_latency_->value();
  s.modeled_energy_total = modeled_energy_->value();
  s.wall = wall_->snapshot();
  s.batch_sizes = batch_sizes_->snapshot();
  s.queue_wait = queue_wait_->snapshot();
  s.batch_wait = batch_wait_->snapshot();
  s.scan = scan_->snapshot();
  s.merge = merge_->snapshot();
  s.compaction = compaction_->snapshot();
  return s;
}

std::string ServingMetrics::summary_table() const {
  const Snapshot s = snapshot();
  Table t({"metric", "value"});
  t.add_row({"queries", std::to_string(s.queries)});
  t.add_row({"batches", std::to_string(s.batches)});
  t.add_row({"wall time (s)", Table::fmt(s.wall_seconds)});
  t.add_row({"throughput (QPS)", Table::fmt(s.qps)});
  t.add_row({"wall p50 (us)", Table::fmt(s.wall_quantile(0.50) * 1e6)});
  t.add_row({"wall p95 (us)", Table::fmt(s.wall_quantile(0.95) * 1e6)});
  t.add_row({"wall p99 (us)", Table::fmt(s.wall_quantile(0.99) * 1e6)});
  t.add_row({"batch size p50", Table::fmt(s.batch_size_quantile(0.50))});
  t.add_row({"batch size p99", Table::fmt(s.batch_size_quantile(0.99))});
  t.add_row({"queue depth (now/peak)",
             std::to_string(s.queue_depth) + "/" +
                 std::to_string(s.peak_queue_depth)});
  t.add_row({"rejected", std::to_string(s.rejected)});
  t.add_row({"shed", std::to_string(s.shed)});
  t.add_row({"deadline expired", std::to_string(s.expired)});
  t.add_row({"modeled HW latency/query (ns)",
             Table::fmt(s.modeled_latency_per_query() * 1e9)});
  t.add_row({"modeled HW energy/query (pJ)",
             Table::fmt(s.modeled_energy_per_query() * 1e12)});
  t.add_row(
      {"modeled HW energy total (nJ)", Table::fmt(s.modeled_energy_total * 1e9)});
  t.add_row({"resident index (KiB)",
             Table::fmt(static_cast<double>(s.resident_index_bytes) / 1024.0)});
  t.add_row({"segments (delta rows)",
             std::to_string(s.segments) + " (" +
                 std::to_string(s.delta_rows) + ")"});
  t.add_row({"compactions (rows)", std::to_string(s.compactions) + " (" +
                                       std::to_string(s.compacted_rows) +
                                       ")"});
  return t.render();
}

std::string ServingMetrics::stage_table() const {
  const Snapshot s = snapshot();
  Table t({"stage", "count", "p50 (us)", "p95 (us)", "p99 (us)"});
  const auto row = [&t](const char* name, const obs::HistogramSnapshot& h) {
    if (h.total() == 0) {
      t.add_row({name, "0", "-", "-", "-"});
      return;
    }
    t.add_row({name, std::to_string(h.total()),
               Table::fmt(h.quantile(0.50) * 1e6),
               Table::fmt(h.quantile(0.95) * 1e6),
               Table::fmt(h.quantile(0.99) * 1e6)});
  };
  row("queue wait", s.queue_wait);
  row("batch wait", s.batch_wait);
  row("scan", s.scan);
  row("merge", s.merge);
  return t.render();
}

}  // namespace tdam::runtime
