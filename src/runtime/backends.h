// The built-in backend registry: every similarity engine the repo knows,
// keyed by the name a `--backend=` flag passes in.
//
//   behavioral — calibrated TD-AM model (am::BehavioralAm), AmSystemModel
//                pass folding behind the cost hook;
//   digital    — all-digital XNOR+popcount comparator array;
//   cam        — current-domain multi-bit crossbar CAM + per-row ADC;
//   exact      — pure-software reference (no hardware cost model);
//   cosine     — COSIME-style cosine similarity, norms cached at store;
//   dot        — raw integer dot product (the TD-CiM MVM primitive).
//
// The first four compute the identical digit-mismatch distance, so they are
// interchangeable behind runtime::ShardedIndex: same (score, global row)
// top-k, different modeled hardware.  cosine/dot score descending (see
// core::metric_order) and ride the identical sharded path.  This
// translation unit is the only place the runtime names concrete backend
// types — ShardedIndex and SearchEngine see nothing but
// core::SimilarityBackend.
#pragma once

#include "am/calibration.h"
#include "core/registry.h"

namespace tdam::runtime {

// Geometry shared by every backend instance a registry builds.
struct BackendOptions {
  int stages = 0;        // digits per stored vector (required, >= 1)
  int array_rows = 128;  // physical rows per bank (AM bank rows, digital
                         // comparator lanes, CAM crossbar rows)
  int array_stages = 128;  // AM chain stages per physical bank
  // Software-scan tiling (core::ScanOptions): queries per cache-hot tile of
  // the batch path, and stored rows per scan block (0 = auto-size to L2).
  // The behavioral backend ignores both (it has no pure-software scan).
  int query_tile = 8;
  int row_block = 0;
};

// Registry with the built-ins above, each closed over `cal` (which fixes
// the digit alphabet to 2^cal.bits levels) and `options`.
core::BackendRegistry default_registry(const am::CalibrationResult& cal,
                                       const BackendOptions& options);

}  // namespace tdam::runtime
