// Micro-batching admission queue for the asynchronous serving front-end.
//
// The Scheduler is the synchronization core of AmServer, factored out so it
// can be unit-tested without an engine: callers enqueue individual queries
// (each carrying its own top-k, deadline, and completion promise), a single
// dispatcher thread pulls dynamic micro-batches, and a bounded queue applies
// one of three admission policies when the dispatcher falls behind:
//
//  * kBlock     — enqueue waits for space (backpressure onto the caller);
//  * kReject    — the NEW query completes immediately with
//                 QueryStatus::kRejected (fail-fast);
//  * kShedOldest — the OLDEST queued query completes with
//                 QueryStatus::kShed and the new one is admitted (the head
//                 of the queue has burned the most of its deadline, so it
//                 is the least likely to still be useful).
//
// Batch formation is the classic dynamic rule: flush as soon as max_batch
// queries pend, or as soon as the oldest pending query has waited
// max_delay, whichever comes first.  close() flushes whatever pends,
// releases blocked producers (their queries are rejected), and makes
// next_batch() return empty once drained.
//
// Deadlines are NOT enforced here — the scheduler only transports them.
// AmServer checks them at dequeue so an expired query is answered with
// kDeadlineExpired without ever touching the shards.
#pragma once

#include <chrono>
#include <deque>
#include <condition_variable>
#include <future>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "runtime/engine.h"
#include "runtime/metrics.h"

namespace tdam::runtime {

// Terminal state of one asynchronously served query.  Every status other
// than kOk means the shards were never consulted.
enum class QueryStatus {
  kOk,               // answered; ServedResult::result is valid
  kRejected,         // bounced at admission (kReject policy, or shutdown)
  kShed,             // evicted from the queue by a newer query (kShedOldest)
  kDeadlineExpired,  // deadline passed before dispatch
};

enum class AdmissionPolicy { kBlock, kReject, kShedOldest };

// What a submit() future resolves to.
struct ServedResult {
  QueryStatus status = QueryStatus::kRejected;
  TopKResult result;           // populated iff status == kOk
  double queue_seconds = 0.0;  // enqueue -> terminal transition
  // ShardedIndex::generation() the answer was computed against (kOk only);
  // lets a caller correlate answers with concurrent stores/clears.
  std::uint64_t generation = 0;
  // Per-query trace id assigned at submit (0 when the server has no
  // recorder, e.g. queries driven through a bare Scheduler in tests);
  // correlates with flight-recorder spans and log lines.
  std::uint64_t trace_id = 0;
  // Stage durations for this query; stages never reached stay -1 (tracing
  // off, or a non-kOk status).
  StageTimings stages;
  // The query's full trace span at its server-side terminal transition.
  // For in-process queries the server already recorded it; for wire
  // queries (span.wire()) recording is DEFERRED — AmTcpServer stamps the
  // remaining wire stages (completion_wait/encode/io_send) onto this copy
  // and records it once the reply bytes reach the kernel.
  obs::SpanRecord span;
};

struct SchedulerOptions {
  int max_batch = 32;            // flush when this many queries pend
  double max_delay = 2e-3;       // s; flush when the oldest waited this long
  int queue_capacity = 1024;     // bound on pending queries
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
};

// One pending query in flight between submit() and the dispatcher.
struct PendingQuery {
  std::vector<int> digits;
  int k = 1;
  // steady_clock::time_point::max() == no deadline.
  std::chrono::steady_clock::time_point deadline;
  std::chrono::steady_clock::time_point enqueued;
  std::promise<ServedResult> promise;
  // Trace span riding along with the query; untraced (enqueue_ns == -1)
  // unless AmServer stamped it at submit, and every stamp below is guarded
  // on that, so scheduler-only tests pay nothing.
  obs::SpanRecord span;
};

class Scheduler {
 public:
  // Validates options (max_batch/queue_capacity >= 1, max_delay >= 0,
  // max_batch <= queue_capacity would deadlock kBlock producers — allowed,
  // batches simply flush at queue_capacity).  Metrics may be null; when
  // set, rejected/shed counters and the queue-depth gauge are recorded.
  // Recorder may be null; when set, queries terminated here (rejected,
  // shed) have their spans stamped and recorded — except wire spans, whose
  // recording AmTcpServer owns (see ServedResult::span).  The slow log,
  // when set, captures slow in-process terminations the same way.
  explicit Scheduler(SchedulerOptions options,
                     ServingMetrics* metrics = nullptr,
                     obs::FlightRecorder* recorder = nullptr,
                     obs::SlowQueryLog* slow = nullptr);

  // Safety net for owners destroyed with queries still queued (a dispatcher
  // that never drained, an owner whose constructor threw): closes admission
  // and fulfils every pending promise with kRejected, so a submit() future
  // never observes std::future_error/broken_promise.
  ~Scheduler();

  const SchedulerOptions& options() const { return options_; }

  // Hands one query to the scheduler, applying the admission policy.  The
  // query's promise is always eventually fulfilled: by the dispatcher, by
  // shedding, or by rejection (including enqueue-after-close).
  void enqueue(PendingQuery query);

  // Blocks until a micro-batch is ready (max_batch pending, max_delay
  // elapsed on the oldest, or close() with queries still queued) and pops
  // up to max_batch queries in arrival order.  Returns an empty vector
  // exactly when the scheduler is closed and fully drained — the
  // dispatcher's exit condition.
  std::vector<PendingQuery> next_batch();

  // Stops admission (subsequent/blocked enqueues reject), wakes the
  // dispatcher to drain what pends.
  void close();
  bool closed() const;

  // Queries currently pending.
  int depth() const;

 private:
  void publish_depth_locked();

  SchedulerOptions options_;
  ServingMetrics* metrics_;
  obs::FlightRecorder* recorder_;
  obs::SlowQueryLog* slow_;
  mutable std::mutex mutex_;
  std::condition_variable batch_ready_;   // dispatcher waits here
  std::condition_variable space_free_;    // kBlock producers wait here
  std::deque<PendingQuery> queue_;
  bool closed_ = false;
};

}  // namespace tdam::runtime
