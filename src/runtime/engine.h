// Batched top-k query serving over a ShardedIndex — backend-agnostic.
//
// Execution model: on the packed fast path, one task per *query tile*
// (index().query_tile() queries, the backend's ScanOptions knob); the task
// broadcasts the whole tile to every segment of every shard
// (core::SimilarityBackend::search_topk_packed_batch), so each stored
// segment is streamed through the cache once per tile instead of once per
// query.  Rows are translated to global ids and merged per query into a
// global top-k with the deterministic tie-break (lower distance, then
// lower global row id).  The unpacked fallback (and backends with
// query_tile() == 1, e.g. behavioral) keep one task per query.  Tiles run
// concurrently on a fixed ThreadPool; each query's result is written to
// its own preallocated slot, so the returned batch is bit-identical for
// any thread count and any tile size.  `threads = 1` bypasses the pool
// entirely and is the sequential reference the determinism tests pin
// against.
//
// Concurrency: a batch runs against one pinned IndexSnapshot — a single
// atomic load, no lock — so stores, clears and compactions land freely
// while the batch scans.  Every query in the batch sees the same epoch;
// AmServer pins once per micro-batch and stamps that snapshot's generation
// on the results.  Because segment lists are immutable, the merge order
// (and therefore the result) for a quiesced index is bit-identical to the
// seed's single-bank engine.
//
// Query representation: the primary entry point takes queries packed in a
// core::DigitMatrix (one contiguous buffer per batch; tasks unpack rows
// into a shared arena, zero heap allocations per query).  The
// span<const vector<int>> overload is a thin adapter that packs and
// delegates, kept for callers that hold unpacked digits.
//
// Cost accounting per query:
//  * wall   — host time for the query task (recorded into ServingMetrics'
//    latency histogram; batch wall time drives the QPS counter);
//  * modeled hardware — each segment's QueryCostModel hook
//    (core::SimilarityBackend::query_cost) at the *measured* per-segment
//    mismatch fraction.  A shard's segments share one physical bank, so
//    their costs add up as sequential passes; shards are parallel banks:
//    modeled latency is the slowest bank, modeled energy sums over banks,
//    passes report the worst bank's fold count.
//
// The engine never names a concrete backend — it compiles against the
// core interface only, so a registry entry is all a new engine needs to be
// servable.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/backend.h"
#include "core/digit_matrix.h"
#include "runtime/metrics.h"
#include "runtime/sharded_index.h"
#include "runtime/thread_pool.h"

namespace tdam::runtime {

struct EngineOptions {
  int threads = 1;
};

// Per-query answer: up to k (global row, distance) hits sorted by
// (distance, row), plus both cost views.
struct TopKResult {
  std::vector<core::TopKEntry> entries;
  double modeled_latency = 0.0;  // slowest parallel bank (s)
  double modeled_energy = 0.0;   // all banks (J)
  int modeled_passes = 0;        // worst bank's sequential array passes
  double wall_seconds = 0.0;     // host time for this query
  // Stage split of wall_seconds for tracing: the shard broadcast and the
  // global top-k merge (durations — the task runs at a pool-determined
  // absolute time).
  double scan_seconds = 0.0;
  double merge_seconds = 0.0;
};

class SearchEngine {
 public:
  // The engine serves queries against `index`.  Live mutation is fine:
  // each batch pins the index's published snapshot (or scans one the
  // caller already pinned) and never touches writer state.
  SearchEngine(const ShardedIndex& index, EngineOptions options = {});

  int threads() const { return options_.threads; }
  const ShardedIndex& index() const { return index_; }

  // Answers every row of `queries` (cols() must equal index().stages())
  // with its global top-k against the current published snapshot.  k must
  // be >= 1; fewer than k entries come back when the index holds fewer
  // rows.  Updates the serving metrics as a side effect.  This is the
  // allocation-lean hot path: when the batch is packed with the index's
  // field width, each query row is handed to the segments as packed words
  // (SimilarityBackend::search_topk_packed), so the kernel layer scans
  // without ever unpacking or re-packing digits.
  std::vector<TopKResult> submit_batch(const core::DigitMatrix& queries,
                                       int k);

  // Same, against a caller-pinned snapshot — what AmServer uses so every
  // query of one micro-batch (across its per-k sub-batches) sees a single
  // epoch.
  std::vector<TopKResult> submit_batch(
      const std::shared_ptr<const IndexSnapshot>& snap,
      const core::DigitMatrix& queries, int k);

  // Adapter for unpacked queries (each of index().stages() digits): packs
  // into a DigitMatrix — which validates digit range — and delegates.
  std::vector<TopKResult> submit_batch(
      std::span<const std::vector<int>> queries, int k);

  const ServingMetrics& metrics() const { return metrics_; }
  // The metrics object is internally synchronized; AmServer records its
  // admission outcomes into the same instance through this accessor.
  ServingMetrics& metrics() { return metrics_; }
  void reset_metrics() { metrics_.reset(); }

 private:
  TopKResult run_query(const IndexSnapshot& snap, std::span<const int> query,
                       int k) const;
  TopKResult run_query_packed(const IndexSnapshot& snap,
                              std::span<const std::uint32_t> packed,
                              int k) const;
  // Tile counterpart of run_query_packed: answers queries
  // [first, first+count) in one segment sweep and writes results into
  // `out` (count slots, default-initialised).  Scan time is shared evenly
  // across the tile's queries; merge time is per query.
  void run_tile_packed(const IndexSnapshot& snap,
                       const core::DigitMatrix& queries, int first, int count,
                       int k, std::span<TopKResult> out) const;

  const ShardedIndex& index_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads == 1
  // mutable: the const query paths record per-shard scan times (lock-free
  // instrument writes — logically observation, not mutation).
  mutable ServingMetrics metrics_;
};

}  // namespace tdam::runtime
