// Fixed-size worker pool backing the serving engine.
//
// The engine's unit of work is "one query against all shards", so the pool
// only needs a plain FIFO task queue with future-based completion — no work
// stealing, no priorities.  Tasks submitted before destruction are always
// executed: shutdown drains the queue, then joins, so a batch whose futures
// are still pending cannot be dropped on the floor.  Exceptions thrown by a
// task are captured in its future (std::packaged_task semantics) and rethrow
// at `get()` on the submitter's thread.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tdam::runtime {

class ThreadPool {
 public:
  // Spawns `threads` workers (>= 1, else throws).
  explicit ThreadPool(int threads);

  // Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` and returns a future for its result.  Throws
  // std::runtime_error if the pool is already shutting down.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::packaged_task<Result()>(std::forward<Fn>(fn));
    auto future = task.get_future();
    enqueue(std::packaged_task<void()>(
        [t = std::move(task)]() mutable { t(); }));
    return future;
  }

  // Number of tasks executed since construction (for tests/metrics).
  std::size_t completed() const;

 private:
  void enqueue(std::packaged_task<void()> task);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t completed_ = 0;
  bool stopping_ = false;
};

}  // namespace tdam::runtime
