#include "runtime/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace tdam::runtime {

namespace {

// Fulfil a query's promise with a shards-never-touched terminal status,
// closing out its trace span if the query carries one.  Wire spans are NOT
// recorded here: the TCP server still owes them encode/io_send stamps, so
// the stamped span travels back through ServedResult instead.
void finish(PendingQuery& query, QueryStatus status,
            obs::FlightRecorder* recorder, obs::SlowQueryLog* slow) {
  ServedResult out;
  out.status = status;
  out.queue_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - query.enqueued)
                          .count();
  out.trace_id = query.span.trace_id;
  if (query.span.traced()) {
    query.span.status = static_cast<int>(status);
    query.span.fulfill_ns = obs::steady_now_ns() - query.span.enqueue_ns;
    if (!query.span.wire()) {
      if (recorder) recorder->record(query.span);
      if (slow) slow->maybe_capture(query.span);
    }
    out.span = query.span;
  }
  query.promise.set_value(std::move(out));
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options, ServingMetrics* metrics,
                     obs::FlightRecorder* recorder, obs::SlowQueryLog* slow)
    : options_(options), metrics_(metrics), recorder_(recorder), slow_(slow) {
  if (options_.max_batch < 1)
    throw std::invalid_argument("Scheduler: max_batch must be >= 1 (got " +
                                std::to_string(options_.max_batch) + ")");
  if (options_.queue_capacity < 1)
    throw std::invalid_argument("Scheduler: queue_capacity must be >= 1 (got " +
                                std::to_string(options_.queue_capacity) + ")");
  if (options_.max_delay < 0.0)
    throw std::invalid_argument("Scheduler: max_delay must be >= 0");
}

Scheduler::~Scheduler() {
  close();
  std::deque<PendingQuery> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans.swap(queue_);
    publish_depth_locked();
  }
  for (auto& query : orphans)
    finish(query, QueryStatus::kRejected, recorder_, slow_);
}

void Scheduler::publish_depth_locked() {
  if (metrics_) metrics_->set_queue_depth(queue_.size());
}

void Scheduler::enqueue(PendingQuery query) {
  PendingQuery victim;  // shed query, finished outside the lock
  bool have_victim = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ &&
        queue_.size() >= static_cast<std::size_t>(options_.queue_capacity)) {
      switch (options_.policy) {
        case AdmissionPolicy::kBlock:
          space_free_.wait(lock, [this] {
            return closed_ || queue_.size() <
                                  static_cast<std::size_t>(
                                      options_.queue_capacity);
          });
          break;
        case AdmissionPolicy::kReject:
          if (metrics_) metrics_->record_rejected();
          lock.unlock();
          finish(query, QueryStatus::kRejected, recorder_, slow_);
          return;
        case AdmissionPolicy::kShedOldest:
          victim = std::move(queue_.front());
          queue_.pop_front();
          have_victim = true;
          if (metrics_) metrics_->record_shed();
          break;
      }
    }
    if (closed_) {
      if (metrics_) metrics_->record_rejected();
      lock.unlock();
      finish(query, QueryStatus::kRejected, recorder_, slow_);
      return;
    }
    if (query.span.traced())  // admission cleared (kBlock may have waited)
      query.span.admit_ns = obs::steady_now_ns() - query.span.enqueue_ns;
    queue_.push_back(std::move(query));
    publish_depth_locked();
  }
  batch_ready_.notify_one();
  if (have_victim) finish(victim, QueryStatus::kShed, recorder_, slow_);
}

std::vector<PendingQuery> Scheduler::next_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      if (closed_) return {};
      batch_ready_.wait(lock,
                        [this] { return closed_ || !queue_.empty(); });
      continue;  // re-evaluate: close() with an empty queue returns above
    }
    if (closed_ ||
        queue_.size() >= static_cast<std::size_t>(options_.max_batch))
      break;
    const auto flush_at =
        queue_.front().enqueued +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.max_delay));
    if (!batch_ready_.wait_until(lock, flush_at, [this] {
          return closed_ || queue_.size() >=
                                static_cast<std::size_t>(options_.max_batch);
        }))
      break;  // max_delay elapsed on the oldest query: flush what pends
  }
  std::vector<PendingQuery> batch;
  const auto take = std::min(queue_.size(),
                             static_cast<std::size_t>(options_.max_batch));
  batch.reserve(take);
  const std::int64_t formed = obs::steady_now_ns();
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    auto& span = batch.back().span;
    if (span.traced()) span.batch_form_ns = formed - span.enqueue_ns;
  }
  publish_depth_locked();
  lock.unlock();
  space_free_.notify_all();
  return batch;
}

void Scheduler::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  batch_ready_.notify_all();
  space_free_.notify_all();
}

bool Scheduler::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int Scheduler::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

}  // namespace tdam::runtime
