#include "runtime/thread_pool.h"

#include <stdexcept>

namespace tdam::runtime {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1)
    throw std::invalid_argument("ThreadPool: threads must be >= 1");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void ThreadPool::enqueue(std::packaged_task<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures any exception in the future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
  }
}

}  // namespace tdam::runtime
