#include "runtime/server.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/backend.h"

namespace tdam::runtime {

namespace {
double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Queue-wait duration for a span: batch-form minus the submit-queue stamp.
// In-process queries have no submit_queue stamp (offset -1 → clamped to 0),
// so their queue wait is the full enqueue→batch-form interval; wire queries
// subtract the receive/decode/submit time that preceded scheduler admission,
// keeping the queue_wait stage family a pure admission-queue measurement.
double queue_wait_seconds(const obs::SpanRecord& span) {
  return static_cast<double>(span.batch_form_ns -
                             std::max<std::int64_t>(span.submit_queue_ns, 0)) *
         1e-9;
}
}  // namespace

AmServer::AmServer(ShardedIndex& index, ServerOptions options)
    : index_(index),
      options_(options),
      engine_(index, options.engine),
      recorder_(options.trace),
      slow_(options.trace.slow_threshold_ns, options.trace.slow_capacity),
      scheduler_(options.scheduler, &engine_.metrics(), &recorder_, &slow_),
      dispatcher_([this] { serve_loop(); }) {
  // Segment gauges and compaction timings land in this server's registry,
  // so one scrape covers admission, engine, and index lifecycle.
  index_.set_metrics(&engine_.metrics());
  slow_.set_context({index_.backend_name(),
                     core::metric_name(index_.metric()),
                     index_.num_shards()});
}

AmServer::~AmServer() {
  shutdown();
  // Detach before engine_ (and its metrics) is destroyed — the index and
  // its compaction thread may outlive this server.
  index_.set_metrics(nullptr);
}

void AmServer::shutdown() {
  scheduler_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<ServedResult> AmServer::submit(
    std::span<const int> query, int k,
    std::chrono::steady_clock::time_point deadline) {
  return submit(query, k, deadline, obs::SpanRecord{});
}

std::future<ServedResult> AmServer::submit(
    std::span<const int> query, int k,
    std::chrono::steady_clock::time_point deadline, obs::SpanRecord seed) {
  if (k < 1)
    throw std::invalid_argument("AmServer::submit: k must be >= 1");
  if (static_cast<int>(query.size()) != index_.stages())
    throw std::invalid_argument(
        "AmServer::submit: query has " + std::to_string(query.size()) +
        " digits, index stores " + std::to_string(index_.stages()));
  for (std::size_t i = 0; i < query.size(); ++i)
    if (query[i] < 0 || query[i] >= index_.levels())
      throw std::invalid_argument(
          "AmServer::submit: digit " + std::to_string(query[i]) +
          " at position " + std::to_string(i) + " outside [0, " +
          std::to_string(index_.levels()) + ")");
  PendingQuery pending;
  pending.digits.assign(query.begin(), query.end());
  pending.k = k;
  pending.deadline = deadline;
  pending.enqueued = std::chrono::steady_clock::now();
  // Ids are assigned even with tracing off so every ServedResult is
  // correlatable; the enqueue stamp (which arms all later stage stamps) is
  // only taken when tracing is on.  A traced wire seed already carries its
  // base (frame receipt) and pre-server stamps — keep them, so the span's
  // offsets stay anchored to one instant.
  pending.span = seed;
  pending.span.trace_id = recorder_.next_trace_id();
  if (pending.span.enqueue_ns < 0 && recorder_.enabled())
    pending.span.enqueue_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            pending.enqueued.time_since_epoch())
            .count();
  auto future = pending.promise.get_future();
  scheduler_.enqueue(std::move(pending));
  return future;
}

std::vector<std::future<ServedResult>> AmServer::submit(
    const core::DigitMatrix& queries, int k,
    std::chrono::steady_clock::time_point deadline) {
  if (queries.cols() != index_.stages())
    throw std::invalid_argument(
        "AmServer::submit: queries have " + std::to_string(queries.cols()) +
        " digits, index stores " + std::to_string(index_.stages()));
  std::vector<std::future<ServedResult>> futures;
  futures.reserve(static_cast<std::size_t>(queries.rows()));
  for (int r = 0; r < queries.rows(); ++r)
    futures.push_back(submit(queries.unpack_row(r), k, deadline));
  return futures;
}

int AmServer::store(std::span<const int> digits) {
  return index_.store(digits);  // publishes a new epoch; never blocks reads
}

void AmServer::clear() {
  index_.clear();  // publishes a new epoch; never blocks reads
}

std::uint64_t AmServer::generation() const { return index_.generation(); }

void AmServer::serve_loop() {
  for (;;) {
    auto batch = scheduler_.next_batch();
    if (batch.empty()) return;  // closed and drained
    run_batch(std::move(batch));
  }
}

void AmServer::run_batch(std::vector<PendingQuery> batch) {
  const auto now = std::chrono::steady_clock::now();
  // Deadline check at dequeue: an expired query is answered without ever
  // touching the shards — the cheapest possible form of load shedding.
  std::vector<PendingQuery> live;
  live.reserve(batch.size());
  for (auto& query : batch) {
    if (query.deadline <= now) {
      engine_.metrics().record_expired();
      ServedResult out;
      out.status = QueryStatus::kDeadlineExpired;
      out.queue_seconds = seconds_between(query.enqueued, now);
      out.trace_id = query.span.trace_id;
      if (query.span.traced()) {
        if (query.span.batch_form_ns >= 0)
          out.stages.queue_wait = queue_wait_seconds(query.span);
        query.span.status = static_cast<int>(QueryStatus::kDeadlineExpired);
        query.span.k = query.k;
        query.span.fulfill_ns =
            obs::steady_now_ns() - query.span.enqueue_ns;
        if (!query.span.wire()) {
          recorder_.record(query.span);
          slow_.maybe_capture(query.span);
        }
        out.span = query.span;
      }
      query.promise.set_value(std::move(out));
    } else {
      live.push_back(std::move(query));
    }
  }
  if (live.empty()) return;

  // One engine call per distinct k (queries in a micro-batch may disagree
  // on k); arrival order is preserved within each group, and the engine is
  // deterministic, so coalescing never changes any query's answer.
  std::map<int, std::vector<std::size_t>> by_k;
  for (std::size_t i = 0; i < live.size(); ++i)
    by_k[live[i].k].push_back(i);

  // Pin one snapshot for the whole micro-batch: every answer below —
  // across all per-k engine calls — is computed against this one epoch,
  // while writers publish new epochs freely in parallel.
  const auto snap = index_.pin();
  const auto generation = snap->generation;
  for (auto& [k, members] : by_k) {
    core::DigitMatrix packed(index_.stages(), index_.levels());
    for (const auto i : members) packed.append(live[i].digits);
    // Dispatch stamp: the moment this k-group's engine call starts.
    const std::int64_t dispatched = obs::steady_now_ns();
    for (const auto i : members) {
      auto& span = live[i].span;
      if (span.traced()) span.dispatch_ns = dispatched - span.enqueue_ns;
    }
    std::vector<TopKResult> results;
    try {
      results = engine_.submit_batch(snap, packed, k);
    } catch (...) {
      for (const auto i : members)
        live[i].promise.set_exception(std::current_exception());
      continue;
    }
    for (std::size_t j = 0; j < members.size(); ++j) {
      auto& query = live[members[j]];
      ServedResult out;
      out.status = QueryStatus::kOk;
      out.result = std::move(results[j]);
      out.queue_seconds = seconds_between(query.enqueued, now);
      out.generation = generation;
      out.trace_id = query.span.trace_id;
      out.stages.scan = out.result.scan_seconds;
      out.stages.merge = out.result.merge_seconds;
      auto& span = query.span;
      if (span.traced()) {
        if (span.batch_form_ns >= 0)
          out.stages.queue_wait = queue_wait_seconds(span);
        if (span.batch_form_ns >= 0 && span.dispatch_ns >= span.batch_form_ns)
          out.stages.batch_wait =
              static_cast<double>(span.dispatch_ns - span.batch_form_ns) *
              1e-9;
        span.scan_ns =
            static_cast<std::int64_t>(out.result.scan_seconds * 1e9);
        span.merge_ns =
            static_cast<std::int64_t>(out.result.merge_seconds * 1e9);
        span.status = static_cast<int>(QueryStatus::kOk);
        span.k = query.k;
        span.generation = generation;
        span.fulfill_ns = obs::steady_now_ns() - span.enqueue_ns;
        if (!span.wire()) {
          recorder_.record(span);
          slow_.maybe_capture(span);
        }
        out.span = span;
      }
      // scan/merge were already recorded by the engine inside submit_batch;
      // only the queueing stages are this layer's to report.
      StageTimings pre = out.stages;
      pre.scan = -1.0;
      pre.merge = -1.0;
      engine_.metrics().record_stage_times(pre);
      query.promise.set_value(std::move(out));
    }
  }
}

}  // namespace tdam::runtime
