#include "runtime/sharded_index.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/index_io.h"
#include "runtime/metrics.h"

namespace tdam::runtime {

std::size_t IndexSnapshot::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards)
    for (const auto& seg : shard) total += seg->backend().resident_bytes();
  return total;
}

// All writer state lives here, behind one mutex: the per-shard sealed runs,
// the raw delta buffers a store() rebuild reads from, the id counter, and
// the compaction thread.  Readers never touch any of it — they only load
// the atomic snapshot pointer.
class ShardedIndex::Impl {
 public:
  Impl(const core::BackendRegistry& registry, ShardedIndexOptions options)
      : options_(std::move(options)), registry_(registry) {
    if (options_.shards < 1)
      throw std::invalid_argument("ShardedIndex: shards must be >= 1 (got " +
                                  std::to_string(options_.shards) + ")");
    if (options_.seal_rows < 1)
      throw std::invalid_argument(
          "ShardedIndex: seal_rows must be >= 1 (got " +
          std::to_string(options_.seal_rows) + ")");
    if (options_.compact_min_segments < 2)
      throw std::invalid_argument(
          "ShardedIndex: compact_min_segments must be >= 2 (got " +
          std::to_string(options_.compact_min_segments) + ")");
    // A probe instance pins the geometry (and faults unknown backends at
    // construction, like the seed's eager per-shard creation did).
    const auto probe = registry_.create(options_.backend);
    stages_ = probe->stages();
    levels_ = probe->levels();
    metric_ = probe->metric();
    query_tile_ = std::max(1, probe->query_tile());
    writers_.resize(static_cast<std::size_t>(options_.shards));
    publish_locked();  // the empty epoch-0 snapshot
    if (options_.background_compaction)
      compactor_ = std::thread([this] { compactor_loop(); });
  }

  ~Impl() {
    if (compactor_.joinable()) {
      {
        std::lock_guard lock(write_mutex_);
        stop_ = true;
      }
      compact_cv_.notify_all();
      compactor_.join();
    }
  }

  const ShardedIndexOptions& options() const { return options_; }
  int stages() const { return stages_; }
  int levels() const { return levels_; }
  core::DigitMetric metric() const { return metric_; }
  int query_tile() const { return query_tile_; }

  std::shared_ptr<const IndexSnapshot> pin() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  int store(std::span<const int> digits) {
    std::lock_guard lock(write_mutex_);
    const int s = pick_shard_locked();
    auto& w = writers_[static_cast<std::size_t>(s)];
    // Copy-on-write: rebuild the delta with the new row appended.  The
    // builder's backend validates `digits` here, before any writer state
    // is committed, so a bad row leaves the index untouched.
    core::SegmentBuilder builder(registry_, options_.backend);
    const int rows = static_cast<int>(w.delta_ids.size());
    for (int r = 0; r < rows; ++r)
      builder.append(delta_row(w, r), w.delta_ids[static_cast<std::size_t>(r)]);
    const int global = next_global_;
    builder.append(digits, global);
    auto segment = builder.seal();

    w.delta_digits.insert(w.delta_digits.end(), digits.begin(), digits.end());
    w.delta_ids.push_back(global);
    ++next_global_;
    if (static_cast<int>(w.delta_ids.size()) >= options_.seal_rows) {
      // Sealing is a move, not a rebuild: the delta segment is already
      // immutable, it just stops growing.
      w.sealed.push_back(std::move(segment));
      w.sealed_rows += static_cast<int>(w.delta_ids.size());
      w.delta.reset();
      w.delta_digits.clear();
      w.delta_ids.clear();
    } else {
      w.delta = std::move(segment);
    }
    ++generation_;
    publish_locked();
    if (compaction_candidate_locked() >= 0) compact_cv_.notify_one();
    return global;
  }

  void clear() {
    std::lock_guard lock(write_mutex_);
    for (auto& w : writers_) w = ShardWriter{};
    next_global_ = 0;
    ++generation_;
    publish_locked();
  }

  void compact_now() {
    std::lock_guard lock(write_mutex_);
    for (auto& w : writers_) {
      auto parts = w.sealed;
      if (w.delta) parts.push_back(w.delta);
      if (parts.size() < 2) {
        if (w.delta) seal_delta_locked(w);  // single delta: just freeze it
        continue;
      }
      const auto start = std::chrono::steady_clock::now();
      auto merged = core::merge_segments(registry_, options_.backend, parts);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      w.sealed.assign(1, std::move(merged));
      w.sealed_rows += static_cast<int>(w.delta_ids.size());
      w.delta.reset();
      w.delta_digits.clear();
      w.delta_ids.clear();
      record_compaction_locked(seconds, w.sealed.front()->rows());
    }
    publish_locked();  // layout changed, contents and generation did not
  }

  std::uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  void set_metrics(ServingMetrics* metrics) {
    std::lock_guard lock(write_mutex_);
    metrics_ = metrics;
    if (metrics_) push_gauges_locked();
  }

  void save(const std::string& path) const {
    const auto snap = pin();  // the file is this snapshot, nothing newer
    core::IndexFileInfo info;
    info.backend = options_.backend;
    info.stages = stages_;
    info.levels = levels_;
    info.shards = options_.shards;
    info.rows = static_cast<std::uint64_t>(snap->rows);
    std::vector<core::SavedSegment> saved;
    saved.reserve(static_cast<std::size_t>(snap->segments));
    // Fallback packs for backends without a packed_view (none in-tree);
    // unique_ptrs so SavedSegment spans survive vector growth.
    std::vector<std::unique_ptr<core::DigitMatrix>> repacked;
    for (int s = 0; s < snap->num_shards(); ++s) {
      for (const auto& seg : snap->shards[static_cast<std::size_t>(s)]) {
        if (seg->rows() == 0) continue;
        const core::DigitMatrix* m = seg->backend().packed_view();
        if (m == nullptr) {
          auto tmp = std::make_unique<core::DigitMatrix>(stages_, levels_);
          for (int r = 0; r < seg->rows(); ++r)
            tmp->append(seg->backend().row_digits(r));
          repacked.push_back(std::move(tmp));
          m = repacked.back().get();
        }
        saved.push_back(core::SavedSegment{
            s, seg->global_ids(),
            {m->words_data(), static_cast<std::size_t>(m->rows()) *
                                  static_cast<std::size_t>(m->words_per_row())}});
      }
    }
    core::save_index_file(path, info, saved);
  }

  // Adopts a freshly mapped file into the (still empty) writer state: one
  // registry-built backend per segment referencing the mapping in place,
  // every segment sealed.  The delta restarts empty; generation stays 0.
  void install(core::LoadedIndex loaded) {
    if (stages_ != loaded.info.stages || levels_ != loaded.info.levels)
      throw std::runtime_error(
          "ShardedIndex::load: the registry builds '" + options_.backend +
          "' with stages=" + std::to_string(stages_) + " levels=" +
          std::to_string(levels_) + ", but the file declares stages=" +
          std::to_string(loaded.info.stages) + " levels=" +
          std::to_string(loaded.info.levels));
    if (loaded.info.rows >
        static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
      throw std::runtime_error("ShardedIndex::load: file declares " +
                               std::to_string(loaded.info.rows) +
                               " rows, more than an int row id can address");
    std::lock_guard lock(write_mutex_);
    for (auto& seg : loaded.segments) {
      const auto shard = static_cast<std::size_t>(seg.shard);
      auto& w = writers_[shard];
      if (!w.sealed.empty() && !seg.ids.empty() &&
          seg.ids.front() <= w.sealed.back()->global_id(
                                 w.sealed.back()->rows() - 1))
        throw std::runtime_error(
            "ShardedIndex::load: shard " + std::to_string(seg.shard) +
            " segments do not chain in ascending global-id order");
      auto backend = registry_.create(options_.backend);
      backend->adopt_matrix(std::move(seg.matrix));
      auto segment = std::make_shared<const core::Segment>(
          std::move(backend), std::move(seg.ids), loaded.mapping);
      w.sealed_rows += segment->rows();
      w.sealed.push_back(std::move(segment));
    }
    next_global_ = static_cast<int>(loaded.info.rows);
    publish_locked();
    if (compaction_candidate_locked() >= 0) compact_cv_.notify_one();
  }

 private:
  struct ShardWriter {
    std::vector<std::shared_ptr<const core::Segment>> sealed;
    std::shared_ptr<const core::Segment> delta;  // null when empty
    // Raw row-major digits backing the delta — what the per-store rebuild
    // replays (cheaper and simpler than unpacking the old delta).
    std::vector<int> delta_digits;
    std::vector<int> delta_ids;
    int sealed_rows = 0;

    int rows() const {
      return sealed_rows + static_cast<int>(delta_ids.size());
    }
  };

  std::span<const int> delta_row(const ShardWriter& w, int r) const {
    return std::span<const int>(w.delta_digits)
        .subspan(static_cast<std::size_t>(r) * static_cast<std::size_t>(stages_),
                 static_cast<std::size_t>(stages_));
  }

  void seal_delta_locked(ShardWriter& w) {
    w.sealed.push_back(std::move(w.delta));
    w.sealed_rows += static_cast<int>(w.delta_ids.size());
    w.delta.reset();
    w.delta_digits.clear();
    w.delta_ids.clear();
  }

  int pick_shard_locked() const {
    const int shards = static_cast<int>(writers_.size());
    if (options_.placement == Placement::kRoundRobin)
      return next_global_ % shards;
    int best = 0;
    for (int s = 1; s < shards; ++s)
      if (writers_[static_cast<std::size_t>(s)].rows() <
          writers_[static_cast<std::size_t>(best)].rows())
        best = s;
    return best;
  }

  // Builds and atomically publishes a fresh snapshot of the writer state.
  // Callers hold write_mutex_.
  void publish_locked() {
    auto snap = std::make_shared<IndexSnapshot>();
    snap->shards.reserve(writers_.size());
    for (const auto& w : writers_) {
      auto& list = snap->shards.emplace_back(w.sealed);
      if (w.delta) list.push_back(w.delta);
      snap->segments += static_cast<int>(list.size());
      snap->delta_rows += static_cast<int>(w.delta_ids.size());
    }
    snap->generation = generation_;
    snap->rows = next_global_;
    snapshot_.store(std::move(snap), std::memory_order_release);
    push_gauges_locked();
  }

  void push_gauges_locked() {
    if (!metrics_) return;
    int segments = 0, delta_rows = 0;
    for (const auto& w : writers_) {
      segments += static_cast<int>(w.sealed.size()) + (w.delta ? 1 : 0);
      delta_rows += static_cast<int>(w.delta_ids.size());
    }
    metrics_->set_segment_stats(static_cast<std::size_t>(segments),
                                static_cast<std::size_t>(delta_rows));
  }

  void record_compaction_locked(double seconds, int rows) {
    compactions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->record_compaction(seconds, static_cast<std::size_t>(rows));
  }

  // Shard most worth compacting (most sealed segments past the threshold),
  // or -1.  Callers hold write_mutex_.
  int compaction_candidate_locked() const {
    int best = -1;
    std::size_t best_segments = 0;
    for (std::size_t s = 0; s < writers_.size(); ++s) {
      const auto n = writers_[s].sealed.size();
      if (n >= static_cast<std::size_t>(options_.compact_min_segments) &&
          n > best_segments) {
        best = static_cast<int>(s);
        best_segments = n;
      }
    }
    return best;
  }

  void compactor_loop() {
    std::unique_lock lock(write_mutex_);
    for (;;) {
      compact_cv_.wait(lock, [this] {
        return stop_ || compaction_candidate_locked() >= 0;
      });
      if (stop_) return;
      const int s = compaction_candidate_locked();
      // Merge outside the lock: stores and queries proceed while the new
      // segment is built from the immutable parts.
      const auto parts = writers_[static_cast<std::size_t>(s)].sealed;
      lock.unlock();
      const auto start = std::chrono::steady_clock::now();
      auto merged = core::merge_segments(registry_, options_.backend, parts);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      lock.lock();
      // Revalidate: clear() or compact_now() may have swapped the list
      // while we merged.  The sealed prefix must still be exactly the
      // parts we merged, else the merge is stale and is dropped.
      auto& w = writers_[static_cast<std::size_t>(s)];
      const bool current =
          w.sealed.size() >= parts.size() &&
          std::equal(parts.begin(), parts.end(), w.sealed.begin());
      if (!current) continue;
      w.sealed.erase(w.sealed.begin(),
                     w.sealed.begin() + static_cast<std::ptrdiff_t>(parts.size()));
      w.sealed.insert(w.sealed.begin(), std::move(merged));
      record_compaction_locked(seconds, w.sealed.front()->rows());
      publish_locked();
    }
  }

  ShardedIndexOptions options_;
  core::BackendRegistry registry_;  // by value: factories outlive callers
  int stages_ = 0;
  int levels_ = 0;
  core::DigitMetric metric_ = core::DigitMetric::kMismatchCount;
  int query_tile_ = 1;

  std::atomic<std::shared_ptr<const IndexSnapshot>> snapshot_;

  mutable std::mutex write_mutex_;
  std::vector<ShardWriter> writers_;
  int next_global_ = 0;
  std::uint64_t generation_ = 0;
  ServingMetrics* metrics_ = nullptr;  // guarded by write_mutex_

  std::atomic<std::uint64_t> compactions_{0};
  std::condition_variable compact_cv_;
  bool stop_ = false;
  std::thread compactor_;
};

ShardedIndex::ShardedIndex(const core::BackendRegistry& registry,
                           ShardedIndexOptions options)
    : impl_(std::make_unique<Impl>(registry, std::move(options))) {}

void ShardedIndex::save(const std::string& path) const { impl_->save(path); }

ShardedIndex ShardedIndex::load(const core::BackendRegistry& registry,
                                const std::string& path,
                                ShardedIndexOptions options) {
  auto loaded = core::load_index_file(path);
  // The file owns identity (which backend, how many shards); the caller's
  // options keep the operational knobs (placement, seal/compaction).
  options.backend = loaded.info.backend;
  options.shards = loaded.info.shards;
  ShardedIndex index(registry, std::move(options));
  index.impl_->install(std::move(loaded));
  return index;
}

ShardedIndex::~ShardedIndex() = default;
ShardedIndex::ShardedIndex(ShardedIndex&&) noexcept = default;
ShardedIndex& ShardedIndex::operator=(ShardedIndex&&) noexcept = default;

int ShardedIndex::num_shards() const { return impl_->options().shards; }
int ShardedIndex::stages() const { return impl_->stages(); }
int ShardedIndex::levels() const { return impl_->levels(); }
core::DigitMetric ShardedIndex::metric() const { return impl_->metric(); }
int ShardedIndex::query_tile() const { return impl_->query_tile(); }
int ShardedIndex::size() const { return impl_->pin()->rows; }

const std::string& ShardedIndex::backend_name() const {
  return impl_->options().backend;
}

Placement ShardedIndex::placement() const {
  return impl_->options().placement;
}

std::shared_ptr<const IndexSnapshot> ShardedIndex::pin() const {
  return impl_->pin();
}

int ShardedIndex::store(std::span<const int> digits) {
  return impl_->store(digits);
}

void ShardedIndex::clear() { impl_->clear(); }

std::uint64_t ShardedIndex::generation() const {
  return impl_->pin()->generation;
}

void ShardedIndex::compact_now() { impl_->compact_now(); }

std::uint64_t ShardedIndex::compactions() const {
  return impl_->compactions();
}

void ShardedIndex::set_metrics(ServingMetrics* metrics) {
  impl_->set_metrics(metrics);
}

int ShardedIndex::shard_size(int s) const {
  const auto snap = impl_->pin();
  if (s < 0 || s >= snap->num_shards())
    throw std::out_of_range("ShardedIndex::shard_size: bad shard index");
  int rows = 0;
  for (const auto& seg : snap->shards[static_cast<std::size_t>(s)])
    rows += seg->rows();
  return rows;
}

int ShardedIndex::global_row(int s, int local) const {
  const auto snap = impl_->pin();
  if (s < 0 || s >= snap->num_shards())
    throw std::out_of_range("ShardedIndex::global_row: bad shard index");
  if (local >= 0)
    for (const auto& seg : snap->shards[static_cast<std::size_t>(s)]) {
      if (local < seg->rows()) return seg->global_id(local);
      local -= seg->rows();
    }
  throw std::out_of_range("ShardedIndex::global_row: bad local row");
}

std::vector<int> ShardedIndex::row(int global) const {
  const auto snap = impl_->pin();
  if (global >= 0 && global < snap->rows)
    for (const auto& shard : snap->shards)
      for (const auto& seg : shard) {
        const int local = seg->find_global(global);
        if (local >= 0) return seg->backend().row_digits(local);
      }
  throw std::out_of_range("ShardedIndex::row: bad global row");
}

std::vector<std::vector<int>> ShardedIndex::snapshot() const {
  const auto snap = impl_->pin();
  std::vector<std::vector<int>> out(static_cast<std::size_t>(snap->rows));
  for (const auto& shard : snap->shards)
    for (const auto& seg : shard)
      for (int local = 0; local < seg->rows(); ++local)
        out[static_cast<std::size_t>(seg->global_id(local))] =
            seg->backend().row_digits(local);
  return out;
}

std::size_t ShardedIndex::resident_bytes() const {
  return impl_->pin()->resident_bytes();
}

}  // namespace tdam::runtime
