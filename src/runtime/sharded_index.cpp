#include "runtime/sharded_index.h"

#include <stdexcept>

namespace tdam::runtime {

ShardedIndex::ShardedIndex(const am::CalibrationResult& cal, int shards,
                           int stages, Placement placement)
    : stages_(stages), placement_(placement) {
  if (shards < 1)
    throw std::invalid_argument("ShardedIndex: shards must be >= 1");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) shards_.emplace_back(cal, stages);
  global_ids_.resize(static_cast<std::size_t>(shards));
}

int ShardedIndex::pick_shard() const {
  if (placement_ == Placement::kRoundRobin)
    return static_cast<int>(rows_.size()) % num_shards();
  int best = 0;
  for (int s = 1; s < num_shards(); ++s)
    if (shards_[static_cast<std::size_t>(s)].rows() <
        shards_[static_cast<std::size_t>(best)].rows())
      best = s;
  return best;
}

int ShardedIndex::store(std::span<const int> digits) {
  const int s = pick_shard();
  const int global = static_cast<int>(rows_.size());
  shards_[static_cast<std::size_t>(s)].store(digits);  // validates width
  global_ids_[static_cast<std::size_t>(s)].push_back(global);
  rows_.emplace_back(digits.begin(), digits.end());
  return global;
}

void ShardedIndex::clear() {
  for (auto& s : shards_) s.clear();
  for (auto& ids : global_ids_) ids.clear();
  rows_.clear();
}

const am::BehavioralAm& ShardedIndex::shard(int s) const {
  if (s < 0 || s >= num_shards())
    throw std::out_of_range("ShardedIndex::shard: bad shard index");
  return shards_[static_cast<std::size_t>(s)];
}

int ShardedIndex::shard_size(int s) const { return shard(s).rows(); }

int ShardedIndex::global_row(int s, int local) const {
  if (s < 0 || s >= num_shards())
    throw std::out_of_range("ShardedIndex::global_row: bad shard index");
  const auto& ids = global_ids_[static_cast<std::size_t>(s)];
  if (local < 0 || local >= static_cast<int>(ids.size()))
    throw std::out_of_range("ShardedIndex::global_row: bad local row");
  return ids[static_cast<std::size_t>(local)];
}

}  // namespace tdam::runtime
