#include "runtime/sharded_index.h"

#include <stdexcept>

namespace tdam::runtime {

ShardedIndex::ShardedIndex(const core::BackendRegistry& registry,
                           ShardedIndexOptions options)
    : options_(std::move(options)) {
  if (options_.shards < 1)
    throw std::invalid_argument("ShardedIndex: shards must be >= 1 (got " +
                                std::to_string(options_.shards) + ")");
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s)
    shards_.push_back(registry.create(options_.backend));
  global_ids_.resize(static_cast<std::size_t>(options_.shards));
}

int ShardedIndex::pick_shard() const {
  if (options_.placement == Placement::kRoundRobin)
    return static_cast<int>(locations_.size()) % num_shards();
  int best = 0;
  for (int s = 1; s < num_shards(); ++s)
    if (shards_[static_cast<std::size_t>(s)]->rows() <
        shards_[static_cast<std::size_t>(best)]->rows())
      best = s;
  return best;
}

int ShardedIndex::store(std::span<const int> digits) {
  const int s = pick_shard();
  const int global = static_cast<int>(locations_.size());
  const int local =
      shards_[static_cast<std::size_t>(s)]->store(digits);  // validates
  global_ids_[static_cast<std::size_t>(s)].push_back(global);
  locations_.emplace_back(s, local);
  ++generation_;
  return global;
}

void ShardedIndex::clear() {
  for (auto& s : shards_) s->clear();
  for (auto& ids : global_ids_) ids.clear();
  locations_.clear();
  ++generation_;
}

const core::SimilarityBackend& ShardedIndex::shard(int s) const {
  if (s < 0 || s >= num_shards())
    throw std::out_of_range("ShardedIndex::shard: bad shard index");
  return *shards_[static_cast<std::size_t>(s)];
}

int ShardedIndex::shard_size(int s) const { return shard(s).rows(); }

int ShardedIndex::global_row(int s, int local) const {
  if (s < 0 || s >= num_shards())
    throw std::out_of_range("ShardedIndex::global_row: bad shard index");
  const auto& ids = global_ids_[static_cast<std::size_t>(s)];
  if (local < 0 || local >= static_cast<int>(ids.size()))
    throw std::out_of_range("ShardedIndex::global_row: bad local row");
  return ids[static_cast<std::size_t>(local)];
}

std::vector<int> ShardedIndex::row(int global) const {
  if (global < 0 || global >= size())
    throw std::out_of_range("ShardedIndex::row: bad global row");
  const auto [s, local] = locations_[static_cast<std::size_t>(global)];
  return shards_[static_cast<std::size_t>(s)]->row_digits(local);
}

std::vector<std::vector<int>> ShardedIndex::snapshot() const {
  std::vector<std::vector<int>> out;
  out.reserve(locations_.size());
  for (int g = 0; g < size(); ++g) out.push_back(row(g));
  return out;
}

std::size_t ShardedIndex::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->resident_bytes();
  return total;
}

}  // namespace tdam::runtime
