// Serving metrics with a deliberate split between two clocks:
//
//  * wall-clock — what this software engine actually achieves on the host
//    (throughput, per-query latency quantiles from util::Histogram); and
//  * modeled hardware — what the calibrated TD-AM circuit model says the
//    physical banks would cost for the same workload (latency from the
//    slowest parallel bank, energy summed over banks, AmSystemModel pass
//    folding already applied by the engine).
//
// Keeping both visible side by side is the point: the software numbers
// validate the serving architecture, the hardware numbers carry the paper's
// efficiency claim.
//
// For the asynchronous front-end the same object also records the
// degradation surface: a queue-depth gauge (current + peak), a micro-batch
// size histogram, and rejected/shed/expired admission counters.  All
// methods are internally synchronized — AmServer's dispatcher, its
// submitters, and a metrics reader may touch one instance concurrently.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

#include "util/histogram.h"

namespace tdam::runtime {

// One batch worth of aggregated counters, as produced by the engine.
struct BatchStats {
  int queries = 0;
  double wall_seconds = 0.0;      // submit-to-last-result batch wall time
  double modeled_latency = 0.0;   // summed per-query modeled HW latency (s)
  double modeled_energy = 0.0;    // summed per-query modeled HW energy (J)
};

class ServingMetrics {
 public:
  // Per-query wall latencies are binned over [0, latency_hi) seconds;
  // slower queries land in the histogram overflow and quantiles clamp.
  // Batch sizes are binned one-per-bin over [0, batch_hi).
  explicit ServingMetrics(double latency_hi = 0.25, std::size_t bins = 4096,
                          std::size_t batch_hi = 1024);

  void record_query_wall(double seconds);
  void record_batch(const BatchStats& batch);
  // Admission-control outcomes (AmServer): a query bounced by kReject, a
  // queued query evicted by kShedOldest, a query whose deadline passed
  // before dispatch.
  void record_rejected();
  void record_shed();
  void record_expired();
  // Gauge: queries currently waiting in the admission queue.  Also tracks
  // the high-water mark since the last reset.
  void set_queue_depth(std::size_t depth);
  // Resident bytes of the served index (packed backend storage); the engine
  // refreshes this after every batch so the summary shows what the stored
  // set actually costs in memory.
  void set_resident_index_bytes(std::size_t bytes);
  void reset();

  std::size_t queries() const;
  std::size_t batches() const;
  double wall_seconds() const;
  // Cumulative throughput over all recorded batches.
  double qps() const;
  // p in [0, 1]; per-query wall-latency quantile in seconds.
  double wall_quantile(double p) const;
  // p in [0, 1]; micro-batch size quantile in queries per batch.
  double batch_size_quantile(double p) const;

  std::size_t rejected() const;
  std::size_t shed() const;
  std::size_t expired() const;
  std::size_t queue_depth() const;
  std::size_t peak_queue_depth() const;

  std::size_t resident_index_bytes() const;

  double modeled_latency_total() const;
  double modeled_energy_total() const;
  double modeled_latency_per_query() const;
  double modeled_energy_per_query() const;

  // Two-column summary (util::Table) of everything above.
  std::string summary_table() const;

 private:
  mutable std::mutex mutex_;
  Histogram wall_;
  Histogram batch_sizes_;
  std::size_t queries_ = 0;
  std::size_t batches_ = 0;
  double wall_seconds_ = 0.0;
  double modeled_latency_ = 0.0;
  double modeled_energy_ = 0.0;
  std::size_t rejected_ = 0;
  std::size_t shed_ = 0;
  std::size_t expired_ = 0;
  std::size_t queue_depth_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::size_t resident_index_bytes_ = 0;
};

}  // namespace tdam::runtime
