// Serving metrics with a deliberate split between two clocks:
//
//  * wall-clock — what this software engine actually achieves on the host
//    (throughput, per-query latency quantiles); and
//  * modeled hardware — what the calibrated TD-AM circuit model says the
//    physical banks would cost for the same workload (latency from the
//    slowest parallel bank, energy summed over banks, AmSystemModel pass
//    folding already applied by the engine).
//
// Keeping both visible side by side is the point: the software numbers
// validate the serving architecture, the hardware numbers carry the paper's
// efficiency claim.
//
// Since the obs refactor this class is a facade over obs::MetricsRegistry
// instruments (striped counters, gauges, atomic-bin histograms), so the
// per-query record paths — record_query_wall, record_stage_times,
// record_rejected/shed/expired, set_queue_depth — are lock-free.  The only
// mutex left guards the multi-field batch section (record_batch) against
// snapshot(), and both run once per *batch*, not per query.
//
// Reads go through snapshot(): one consistent Snapshot struct captured
// under a single lock acquisition, replacing the old getter-per-field API
// (each getter took the mutex separately, so derived values like qps could
// mix counters from different instants).  The registry() accessor exposes
// the underlying instruments for Prometheus/JSON export.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace tdam::runtime {

// One batch worth of aggregated counters, as produced by the engine.
struct BatchStats {
  int queries = 0;
  double wall_seconds = 0.0;      // submit-to-last-result batch wall time
  double modeled_latency = 0.0;   // summed per-query modeled HW latency (s)
  double modeled_energy = 0.0;    // summed per-query modeled HW energy (J)
};

// Per-query serving-stage durations in seconds; -1 marks a stage the query
// never reached (a rejected query has no scan).  queue_wait and batch_wait
// partition the pre-dispatch latency: enqueue → batch formation and batch
// formation → dispatch.  scan and merge are measured inside the engine.
struct StageTimings {
  double queue_wait = -1.0;
  double batch_wait = -1.0;
  double scan = -1.0;
  double merge = -1.0;
};

class ServingMetrics {
 public:
  // Point-in-time, internally consistent view of every metric; captured by
  // snapshot() under one lock acquisition.
  struct Snapshot {
    std::size_t queries = 0;
    std::size_t batches = 0;
    double wall_seconds = 0.0;
    double qps = 0.0;  // cumulative throughput over all recorded batches
    std::size_t rejected = 0;
    std::size_t shed = 0;
    std::size_t expired = 0;
    std::size_t queue_depth = 0;
    std::size_t peak_queue_depth = 0;
    std::size_t resident_index_bytes = 0;
    std::size_t segments = 0;        // published segments across shards
    std::size_t delta_rows = 0;      // rows still in unsealed deltas
    std::size_t compactions = 0;     // background + forced merges completed
    std::size_t compacted_rows = 0;  // rows rewritten by those merges
    double modeled_latency_total = 0.0;
    double modeled_energy_total = 0.0;
    obs::HistogramSnapshot wall;         // per-query wall latency (s)
    obs::HistogramSnapshot batch_sizes;  // queries per micro-batch
    obs::HistogramSnapshot queue_wait;   // stage histograms (s)
    obs::HistogramSnapshot batch_wait;
    obs::HistogramSnapshot scan;
    obs::HistogramSnapshot merge;
    obs::HistogramSnapshot compaction;   // per-merge duration (s)

    // p in [0, 1]; per-query wall-latency quantile in seconds.
    double wall_quantile(double p) const { return wall.quantile(p); }
    // p in [0, 1]; micro-batch size quantile in queries per batch.
    double batch_size_quantile(double p) const {
      return batch_sizes.quantile(p);
    }
    double modeled_latency_per_query() const {
      return queries == 0
                 ? 0.0
                 : modeled_latency_total / static_cast<double>(queries);
    }
    double modeled_energy_per_query() const {
      return queries == 0
                 ? 0.0
                 : modeled_energy_total / static_cast<double>(queries);
    }
  };

  // Per-query wall latencies and stage durations use *exponential* buckets
  // over [1 µs, latency_hi) seconds — geometric edges give constant
  // relative resolution, so one instrument resolves both the µs-scale scan
  // stages and ms-scale tail latencies that uniform bins smear together.
  // Samples slower than latency_hi land in the histogram overflow and
  // quantiles clamp to latency_hi.  Batch sizes remain linear, binned
  // one-per-bin over [0, batch_hi).
  explicit ServingMetrics(double latency_hi = 0.25, std::size_t bins = 4096,
                          std::size_t batch_hi = 1024);

  void record_query_wall(double seconds);
  // Observes every stage with a non-negative duration; lock-free.
  void record_stage_times(const StageTimings& stages);
  void record_batch(const BatchStats& batch);
  // Admission-control outcomes (AmServer): a query bounced by kReject, a
  // queued query evicted by kShedOldest, a query whose deadline passed
  // before dispatch.
  void record_rejected();
  void record_shed();
  void record_expired();
  // Gauge: queries currently waiting in the admission queue.  Also tracks
  // the high-water mark since the last reset.
  void set_queue_depth(std::size_t depth);
  // Resident bytes of the served index (packed backend storage); the engine
  // refreshes this after every batch so the summary shows what the stored
  // set actually costs in memory.
  void set_resident_index_bytes(std::size_t bytes);
  // Segment-lifecycle gauges: how many segments the published snapshot
  // holds across shards and how many rows sit in unsealed deltas.  The
  // index pushes these on every publish (store/clear/seal/compaction).
  void set_segment_stats(std::size_t segments, std::size_t delta_rows);
  // One compaction merge finished: duration and rows rewritten.
  void record_compaction(double seconds, std::size_t rows);
  // Pre-creates the per-shard instruments for shards [0, shards) —
  // tdam_serving_shard_scan_seconds{shard="s"} (exponential) and
  // tdam_serving_shard_segments{shard="s"} — so the per-query record path
  // below never touches the registry mutex.  Idempotent; the engine calls
  // it at construction, before any traffic.
  void ensure_shards(int shards);
  // Per-shard scan time for one query (seconds) and the segment count the
  // scanned snapshot held for that shard.  Lock-free; out-of-range shard
  // indices (ensure_shards not called / too small) are dropped.
  void record_shard_scan(int shard, double seconds);
  void set_shard_segments(int shard, std::size_t segments);
  void reset();

  // One lock acquisition; every field in the result is from the same
  // instant relative to record_batch.
  Snapshot snapshot() const;

  // The backing instruments, for obs::export_prometheus / export_json.
  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

  // Two-column summary (util::Table) of the snapshot.
  std::string summary_table() const;
  // Per-stage latency breakdown (queue wait / batch wait / scan / merge):
  // count, p50/p95/p99 in microseconds.
  std::string stage_table() const;

 private:
  obs::MetricsRegistry registry_;
  obs::Counter* queries_;
  obs::Counter* batches_;
  obs::Counter* wall_seconds_;
  obs::Counter* rejected_;
  obs::Counter* shed_;
  obs::Counter* expired_;
  obs::Counter* modeled_latency_;
  obs::Counter* modeled_energy_;
  obs::Gauge* queue_depth_;
  obs::Gauge* peak_queue_depth_;
  obs::Gauge* resident_index_bytes_;
  obs::Gauge* segments_;
  obs::Gauge* delta_rows_;
  obs::Counter* compactions_;
  obs::Counter* compacted_rows_;
  obs::Histogram* compaction_;
  obs::Histogram* wall_;
  obs::Histogram* batch_sizes_;
  obs::Histogram* queue_wait_;
  obs::Histogram* batch_wait_;
  obs::Histogram* scan_;
  obs::Histogram* merge_;
  double latency_hi_;
  // Per-shard instruments, indexed by shard id; grown only by
  // ensure_shards (under batch_mutex_, before traffic), so the per-query
  // reads need no lock.
  std::vector<obs::Histogram*> shard_scan_;
  std::vector<obs::Gauge*> shard_segments_;
  // Guards the multi-instrument batch section against snapshot() so the
  // (queries, batches, wall_seconds) triple — and the qps derived from it —
  // is never observed mid-update.  Touched once per batch and per scrape.
  mutable std::mutex batch_mutex_;
};

}  // namespace tdam::runtime
