// Scrape surfaces for the obs registry: Prometheus text exposition format
// and JSON snapshots (instruments + sampled flight-recorder spans + the
// slow-query log).
//
// Prometheus output follows the text-format contract scrapers depend on:
// one `# HELP` / `# TYPE` pair per metric family (families with multiple
// label sets emit it once), sanitized metric names ([a-zA-Z_:][a-zA-Z0-9_:]*,
// offending characters become '_'), escaped label values (backslash, quote,
// newline) and HELP text (backslash, newline), and for histograms the
// cumulative `_bucket{le="..."}` series ending in `le="+Inf"` plus `_sum`
// and `_count`.  Our histograms bound their range explicitly, so the
// bucket edges are the instrument's edge vector (uniform for linear
// layouts, geometric for exponential ones) then +Inf — underflow mass is
// inside the `le="<lo>"` bucket and overflow only in `+Inf`, keeping the
// series cumulative and `_count` equal to the `+Inf` bucket.
//
// scripts/check_metrics_export.py validates both formats in CI (and as a
// ctest) against the output of `examples/serving --async --stats
// --export=...` and against a live `serve_tcp --http-port` scrape.
#pragma once

#include <ostream>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace tdam::obs {

// Prometheus text exposition format (version 0.0.4).
void export_prometheus(std::ostream& out, const MetricsRegistry& registry);

// JSON snapshot: {"counters": [...], "gauges": [...], "histograms": [...]}
// plus, when a recorder is given, {"trace": {...}, "spans": [...]} with the
// per-span stage offsets/durations in nanoseconds (-1 = stage not reached),
// and when a slow log is given, {"slow": {...}} with its captured spans.
void export_json(std::ostream& out, const MetricsRegistry& registry,
                 const FlightRecorder* recorder = nullptr,
                 const SlowQueryLog* slow = nullptr);

// Flight-recorder-only JSON (what the HTTP listener serves at /traces):
// {"trace": {...}, "spans": [...], "slow": {...}} — the sampled ring, then
// the slow-query ring with its threshold/context, both oldest first.
// Either pointer may be null; its section is then an empty/absent stub.
void export_traces_json(std::ostream& out, const FlightRecorder* recorder,
                        const SlowQueryLog* slow = nullptr);

}  // namespace tdam::obs
