// Per-query tracing for the serving stack: spans + a sampled flight
// recorder.
//
// Every query admitted to AmServer is assigned a monotonically increasing
// trace_id, and a SpanRecord rides along with it through Scheduler →
// SearchEngine → shard tasks, collecting stage timestamps: enqueue (absolute
// monotonic ns), then admit / batch-form / dispatch / fulfill as ns offsets
// from enqueue, plus the scan and merge *durations* measured inside the
// query's engine task (those two run at thread-pool-determined absolute
// times, so durations are the honest representation).  A span is plain data
// with fixed layout — no heap allocation is ever performed per span.
//
// Completed spans land in a FlightRecorder: a fixed-capacity ring buffer
// (preallocated; oldest overwritten) holding 1-in-N sampled spans.  Sampling
// is by trace_id (`id % sample_every == 0`), so which queries are recorded
// is deterministic for a deterministic submission order — the property the
// sampling tests pin.
//
// Kill switch, strongest first:
//  * compile-time — building with TDAM_TRACE_DISABLED (CMake option
//    TDAM_DISABLE_TRACING) pins the mode to kOff regardless of environment
//    or per-server configuration;
//  * runtime — TDAM_TRACE=off|sampled|full (TraceConfig::from_env, the
//    default for ServerOptions::trace), with TDAM_TRACE_SAMPLE=N and
//    TDAM_TRACE_CAPACITY=M for the sampling stride and ring size;
//  * per-server — ServerOptions::trace overrides the environment.
//
// In kOff mode no stage clock is ever read and the recorder drops
// everything; in kSampled mode every query is stamped (stage histograms in
// ServingMetrics see all traffic) but only sampled spans enter the ring; in
// kFull mode every span is recorded — a debugging mode whose overhead is
// accepted.  bench_obs_overhead measures the off-vs-sampled wall-QPS cost.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace tdam::obs {

enum class TraceMode { kOff, kSampled, kFull };

struct TraceConfig {
  TraceMode mode = TraceMode::kSampled;
  int sample_every = 16;        // kSampled: record spans with id % N == 0
  std::size_t capacity = 1024;  // ring slots (spans retained)

  // Reads TDAM_TRACE / TDAM_TRACE_SAMPLE / TDAM_TRACE_CAPACITY; unknown or
  // malformed values warn once on stderr and fall back to the defaults
  // above.  Compiled with TDAM_TRACE_DISABLED this always returns kOff.
  static TraceConfig from_env();
};

// Monotonic-clock "now" in integer nanoseconds — the span timebase.
inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One query's trajectory through the serving stack.  -1 marks a stage the
// query never reached (e.g. a rejected query has no dispatch).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  int status = -1;                // runtime::QueryStatus value; -1 unfinished
  std::int64_t enqueue_ns = -1;   // absolute steady-clock ns at submit
  std::int64_t admit_ns = -1;     // offsets from enqueue_ns …
  std::int64_t batch_form_ns = -1;
  std::int64_t dispatch_ns = -1;
  std::int64_t fulfill_ns = -1;
  std::int64_t scan_ns = -1;      // … except these two: stage durations
  std::int64_t merge_ns = -1;

  bool traced() const { return enqueue_ns >= 0; }
};

class FlightRecorder {
 public:
  explicit FlightRecorder(TraceConfig config = TraceConfig::from_env());

  // Effective mode (the compile-time kill switch may have forced kOff).
  TraceMode mode() const { return config_.mode; }
  const TraceConfig& config() const { return config_; }
  bool enabled() const { return config_.mode != TraceMode::kOff; }

  // Next query's trace id; ids start at 1 and never repeat.  Always live
  // (even in kOff mode results still carry correlatable ids) — one relaxed
  // fetch_add.
  std::uint64_t next_trace_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Whether a span with this id belongs in the ring.  Deterministic:
  // kFull → all, kSampled → id % sample_every == 0, kOff → none.
  bool sampled(std::uint64_t trace_id) const {
    switch (config_.mode) {
      case TraceMode::kOff: return false;
      case TraceMode::kFull: return true;
      case TraceMode::kSampled:
        return trace_id % static_cast<std::uint64_t>(config_.sample_every) ==
               0;
    }
    return false;
  }

  // Stores the span if it is traced and sampled (no-op otherwise).  The
  // ring itself is mutex-guarded — by construction only sampled spans reach
  // the lock, so in kSampled mode 1-in-N queries pay one uncontended
  // lock+copy and the rest pay a branch.
  void record(const SpanRecord& span);

  // Retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  // Spans accepted over the recorder's lifetime (>= snapshot().size();
  // the difference is what the ring overwrote).
  std::uint64_t recorded() const;
  std::size_t capacity() const { return config_.capacity; }

  void clear();

 private:
  TraceConfig config_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;  // preallocated to capacity
  std::size_t head_ = 0;          // next slot to write
  std::uint64_t total_ = 0;       // accepted spans
};

}  // namespace tdam::obs
