// Per-query tracing for the serving stack: spans + a sampled flight
// recorder + a slow-query log.
//
// Every query admitted to AmServer is assigned a monotonically increasing
// trace_id, and a SpanRecord rides along with it through Scheduler →
// SearchEngine → shard tasks, collecting stage timestamps: enqueue (absolute
// monotonic ns), then admit / batch-form / dispatch / fulfill as ns offsets
// from enqueue, plus the scan and merge *durations* measured inside the
// query's engine task (those two run at thread-pool-determined absolute
// times, so durations are the honest representation).  A span is plain data
// with fixed layout — no heap allocation is ever performed per span.
//
// Queries arriving over TCP carry six additional *wire* stages stamped by
// AmTcpServer's three thread groups, all offsets from the same enqueue
// base, which for a wire query is the instant its frame was completely
// received: io_recv (frame bytes complete) → decode (payload parsed) →
// submit_queue (submit thread picked the request up) → …server stages… →
// completion_wait (completion thread saw the result) → encode (reply bytes
// built) → io_send (last reply byte handed to the kernel).  Stamped stages
// are monotone in that order, so one sampled span reconciles
// client-observed latency against every queue the server put it through.
// wire() distinguishes the two populations.
//
// Completed spans land in a FlightRecorder: a fixed-capacity ring buffer
// (preallocated; oldest overwritten) holding 1-in-N sampled spans.  Sampling
// is by trace_id (`id % sample_every == 0`), so which queries are recorded
// is deterministic for a deterministic submission order — the property the
// sampling tests pin.
//
// The SlowQueryLog is the anti-sampling companion: a separate ring that
// captures *every* completed span whose wall latency (io_send for wire
// spans, fulfill otherwise) meets a configurable threshold, regardless of
// the 1-in-N stride — exactly the spans an operator wants are exactly the
// ones sampling is most likely to miss.  Threshold 0 captures everything
// (test mode); a negative threshold disables the log.  It still requires
// tracing to be on: with the recorder in kOff mode no stage clock is read,
// so there is nothing to capture.
//
// Kill switch, strongest first:
//  * compile-time — building with TDAM_TRACE_DISABLED (CMake option
//    TDAM_DISABLE_TRACING) pins the mode to kOff regardless of environment
//    or per-server configuration;
//  * runtime — TDAM_TRACE=off|sampled|full (TraceConfig::from_env, the
//    default for ServerOptions::trace), with TDAM_TRACE_SAMPLE=N and
//    TDAM_TRACE_CAPACITY=M for the sampling stride and ring size, and
//    TDAM_SLOW_MS=T / TDAM_SLOW_CAPACITY=M for the slow-query log;
//  * per-server — ServerOptions::trace overrides the environment.
//
// In kOff mode no stage clock is ever read and the recorder drops
// everything; in kSampled mode every query is stamped (stage histograms in
// ServingMetrics see all traffic) but only sampled spans enter the ring; in
// kFull mode every span is recorded — a debugging mode whose overhead is
// accepted.  bench_obs_overhead measures the off-vs-sampled wall-QPS cost,
// in-process and over loopback TCP.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tdam::obs {

enum class TraceMode { kOff, kSampled, kFull };

struct TraceConfig {
  TraceMode mode = TraceMode::kSampled;
  int sample_every = 16;        // kSampled: record spans with id % N == 0
  std::size_t capacity = 1024;  // ring slots (spans retained)
  // Slow-query log: capture every span at least this slow (-1 disables,
  // 0 captures everything).  Wall latency is io_send for wire spans,
  // fulfill for in-process ones.
  std::int64_t slow_threshold_ns = -1;
  std::size_t slow_capacity = 256;

  // Reads TDAM_TRACE / TDAM_TRACE_SAMPLE / TDAM_TRACE_CAPACITY /
  // TDAM_SLOW_MS / TDAM_SLOW_CAPACITY; unknown or malformed values warn
  // once on stderr and fall back to the defaults above.  Compiled with
  // TDAM_TRACE_DISABLED this always returns kOff.
  static TraceConfig from_env();
};

// Monotonic-clock "now" in integer nanoseconds — the span timebase.
inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One query's trajectory through the serving stack.  -1 marks a stage the
// query never reached (e.g. a rejected query has no dispatch; an
// in-process query has no wire stages).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  int status = -1;                // runtime::QueryStatus value; -1 unfinished
  std::int64_t enqueue_ns = -1;   // absolute steady-clock ns at submit (for
                                  // wire queries: at frame receipt)
  std::int64_t admit_ns = -1;     // offsets from enqueue_ns …
  std::int64_t batch_form_ns = -1;
  std::int64_t dispatch_ns = -1;
  std::int64_t fulfill_ns = -1;
  std::int64_t scan_ns = -1;      // … except these two: stage durations
  std::int64_t merge_ns = -1;
  // Wire stages (offsets from enqueue_ns), stamped only for queries that
  // entered through AmTcpServer; see the header comment for the order.
  std::int64_t io_recv_ns = -1;
  std::int64_t decode_ns = -1;
  std::int64_t submit_queue_ns = -1;
  std::int64_t completion_wait_ns = -1;
  std::int64_t encode_ns = -1;
  std::int64_t io_send_ns = -1;
  // Query metadata, for the slow-log breakdown: requested k and the index
  // generation that answered (0 until fulfilled).
  std::int32_t k = 0;
  std::uint64_t generation = 0;

  bool traced() const { return enqueue_ns >= 0; }
  bool wire() const { return io_recv_ns >= 0; }
  // Wall latency in ns as the client experiences it: through io_send for
  // wire spans, through fulfill otherwise; -1 while unfinished.
  std::int64_t wall_ns() const {
    return io_send_ns >= 0 ? io_send_ns : fulfill_ns;
  }
};

class FlightRecorder {
 public:
  explicit FlightRecorder(TraceConfig config = TraceConfig::from_env());

  // Effective mode (the compile-time kill switch may have forced kOff).
  TraceMode mode() const { return config_.mode; }
  const TraceConfig& config() const { return config_; }
  bool enabled() const { return config_.mode != TraceMode::kOff; }

  // Next query's trace id; ids start at 1 and never repeat.  Always live
  // (even in kOff mode results still carry correlatable ids) — one relaxed
  // fetch_add.
  std::uint64_t next_trace_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Whether a span with this id belongs in the ring.  Deterministic:
  // kFull → all, kSampled → id % sample_every == 0, kOff → none.
  bool sampled(std::uint64_t trace_id) const {
    switch (config_.mode) {
      case TraceMode::kOff: return false;
      case TraceMode::kFull: return true;
      case TraceMode::kSampled:
        return trace_id % static_cast<std::uint64_t>(config_.sample_every) ==
               0;
    }
    return false;
  }

  // Stores the span if it is traced and sampled (no-op otherwise).  The
  // ring itself is mutex-guarded — by construction only sampled spans reach
  // the lock, so in kSampled mode 1-in-N queries pay one uncontended
  // lock+copy and the rest pay a branch.
  void record(const SpanRecord& span);

  // Retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  // Spans accepted over the recorder's lifetime (>= snapshot().size();
  // the difference is what the ring overwrote).
  std::uint64_t recorded() const;
  std::size_t capacity() const { return config_.capacity; }

  void clear();

 private:
  TraceConfig config_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;  // preallocated to capacity
  std::size_t head_ = 0;          // next slot to write
  std::uint64_t total_ = 0;       // accepted spans
};

// Serving-stack context attached to slow-query dumps: which backend/metric
// the captured spans were measured against.  Set once at server start.
struct SlowQueryContext {
  std::string backend;
  std::string metric;
  int shards = 0;
};

// Threshold-triggered span ring: every completed span at least
// threshold_ns slow is captured (no sampling stride).  Same preallocated
// ring + mutex discipline as the FlightRecorder; the capture path is a
// branch on wall_ns() for the fast majority of queries.
class SlowQueryLog {
 public:
  // threshold_ns < 0 disables the log (maybe_capture becomes a branch);
  // threshold_ns == 0 captures every completed span.
  SlowQueryLog(std::int64_t threshold_ns = -1, std::size_t capacity = 256);

  bool enabled() const { return threshold_ns_ >= 0; }
  std::int64_t threshold_ns() const { return threshold_ns_; }
  std::size_t capacity() const { return capacity_; }

  void set_context(SlowQueryContext context);
  SlowQueryContext context() const;

  // Captures `span` when the log is enabled, the span is traced and
  // finished, and its wall latency is >= the threshold.
  void maybe_capture(const SpanRecord& span);

  // Captured spans, oldest first.
  std::vector<SpanRecord> snapshot() const;
  // Spans captured over the log's lifetime (>= snapshot().size()).
  std::uint64_t captured() const;
  void clear();

 private:
  std::int64_t threshold_ns_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  SlowQueryContext context_;
  std::vector<SpanRecord> ring_;  // preallocated to capacity
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace tdam::obs
