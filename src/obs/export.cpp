#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <string>

namespace tdam::obs {

namespace {

// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; anything else → '_'.
std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool ok = alpha || c == '_' || c == ':' || (digit && i > 0);
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

// Label values escape backslash, double-quote and newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// HELP text escapes backslash and newline (quotes are legal there).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// %.17g round-trips doubles exactly and prints integers without noise.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Renders {k="v",...}; extra appends one more pair (used for le="...").
std::string label_block(const Labels& labels,
                        const std::pair<std::string, std::string>* extra =
                            nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_name(k) + "=\"" + escape_label_value(v) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += sanitize_name(extra->first) + "=\"" +
           escape_label_value(extra->second) + "\"";
  }
  out += '}';
  return out;
}

// HELP/TYPE must appear once per family even when several label sets share
// a name; callers walk instruments in registration order and consult this.
void emit_header(std::ostream& out, std::string& last_family,
                 const std::string& family, const std::string& help,
                 const char* type) {
  if (family == last_family) return;
  last_family = family;
  out << "# HELP " << family << ' ' << escape_help(help) << '\n';
  out << "# TYPE " << family << ' ' << type << '\n';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void json_labels(std::ostream& out, const Labels& labels) {
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
  }
  out << '}';
}

const char* mode_name(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff: return "off";
    case TraceMode::kSampled: return "sampled";
    case TraceMode::kFull: return "full";
  }
  return "off";
}

const char* kind_name(HistogramKind kind) {
  return kind == HistogramKind::kExponential ? "exponential" : "linear";
}

// One span object; the original server-stage fields come first so
// pre-wire-tracing consumers keep parsing, the wire stages and metadata
// append after.
void json_span(std::ostream& out, const SpanRecord& span) {
  out << "{\"trace_id\":" << span.trace_id << ",\"status\":" << span.status
      << ",\"enqueue_ns\":" << span.enqueue_ns << ",\"admit_ns\":"
      << span.admit_ns << ",\"batch_form_ns\":" << span.batch_form_ns
      << ",\"dispatch_ns\":" << span.dispatch_ns << ",\"fulfill_ns\":"
      << span.fulfill_ns << ",\"scan_ns\":" << span.scan_ns
      << ",\"merge_ns\":" << span.merge_ns << ",\"io_recv_ns\":"
      << span.io_recv_ns << ",\"decode_ns\":" << span.decode_ns
      << ",\"submit_queue_ns\":" << span.submit_queue_ns
      << ",\"completion_wait_ns\":" << span.completion_wait_ns
      << ",\"encode_ns\":" << span.encode_ns << ",\"io_send_ns\":"
      << span.io_send_ns << ",\"wire\":" << (span.wire() ? "true" : "false")
      << ",\"k\":" << span.k << ",\"generation\":" << span.generation << '}';
}

void json_span_array(std::ostream& out, const std::vector<SpanRecord>& spans) {
  out << '[';
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ',';
    first = false;
    json_span(out, span);
  }
  out << ']';
}

// The recorder section body: "trace":{...},"spans":[...].
void json_trace_section(std::ostream& out, const FlightRecorder& recorder) {
  out << "\"trace\":{\"mode\":\"" << mode_name(recorder.mode())
      << "\",\"sample_every\":" << recorder.config().sample_every
      << ",\"capacity\":" << recorder.capacity()
      << ",\"recorded\":" << recorder.recorded() << "},\"spans\":";
  json_span_array(out, recorder.snapshot());
}

// The slow-log section body: "slow":{threshold, context, spans}.
void json_slow_section(std::ostream& out, const SlowQueryLog& slow) {
  const SlowQueryContext ctx = slow.context();
  out << "\"slow\":{\"enabled\":" << (slow.enabled() ? "true" : "false")
      << ",\"threshold_ns\":" << slow.threshold_ns()
      << ",\"capacity\":" << slow.capacity()
      << ",\"captured\":" << slow.captured() << ",\"backend\":\""
      << json_escape(ctx.backend) << "\",\"metric\":\""
      << json_escape(ctx.metric) << "\",\"shards\":" << ctx.shards
      << ",\"spans\":";
  json_span_array(out, slow.snapshot());
  out << '}';
}

}  // namespace

void export_prometheus(std::ostream& out, const MetricsRegistry& registry) {
  std::string last_family;

  for (const Counter* c : registry.counters()) {
    const std::string family = sanitize_name(c->name());
    emit_header(out, last_family, family, c->help(), "counter");
    out << family << label_block(c->labels()) << ' ' << fmt_double(c->value())
        << '\n';
  }

  for (const Gauge* g : registry.gauges()) {
    const std::string family = sanitize_name(g->name());
    emit_header(out, last_family, family, g->help(), "gauge");
    out << family << label_block(g->labels()) << ' ' << fmt_double(g->value())
        << '\n';
  }

  for (const Histogram* h : registry.histograms()) {
    const std::string family = sanitize_name(h->name());
    emit_header(out, last_family, family, h->help(), "histogram");
    const HistogramSnapshot snap = h->snapshot();

    // Cumulative buckets follow the instrument's edge vector (uniform or
    // geometric): the first edge (lo) absorbs underflow, and +Inf picks up
    // overflow so _count equals the +Inf bucket as the format requires.
    std::uint64_t cum = snap.underflow;
    std::pair<std::string, std::string> le{"le", fmt_double(snap.edges[0])};
    out << family << "_bucket" << label_block(h->labels(), &le) << ' ' << cum
        << '\n';
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      cum += snap.counts[i];
      le.second = fmt_double(snap.edges[i + 1]);
      out << family << "_bucket" << label_block(h->labels(), &le) << ' '
          << cum << '\n';
    }
    cum += snap.overflow;
    le.second = "+Inf";
    out << family << "_bucket" << label_block(h->labels(), &le) << ' ' << cum
        << '\n';
    out << family << "_sum" << label_block(h->labels()) << ' '
        << fmt_double(snap.sum) << '\n';
    out << family << "_count" << label_block(h->labels()) << ' ' << cum
        << '\n';
  }
}

void export_json(std::ostream& out, const MetricsRegistry& registry,
                 const FlightRecorder* recorder, const SlowQueryLog* slow) {
  out << "{\"counters\":[";
  bool first = true;
  for (const Counter* c : registry.counters()) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(c->name()) << "\",\"labels\":";
    json_labels(out, c->labels());
    out << ",\"value\":" << fmt_double(c->value()) << '}';
  }

  out << "],\"gauges\":[";
  first = true;
  for (const Gauge* g : registry.gauges()) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(g->name()) << "\",\"labels\":";
    json_labels(out, g->labels());
    out << ",\"value\":" << fmt_double(g->value()) << '}';
  }

  out << "],\"histograms\":[";
  first = true;
  for (const Histogram* h : registry.histograms()) {
    if (!first) out << ',';
    first = false;
    const HistogramSnapshot snap = h->snapshot();
    out << "{\"name\":\"" << json_escape(h->name()) << "\",\"labels\":";
    json_labels(out, h->labels());
    out << ",\"lo\":" << fmt_double(snap.lo) << ",\"hi\":"
        << fmt_double(snap.hi) << ",\"bins\":" << snap.counts.size()
        << ",\"kind\":\"" << kind_name(snap.kind) << "\",\"edges\":[";
    for (std::size_t i = 0; i < snap.edges.size(); ++i) {
      if (i != 0) out << ',';
      out << fmt_double(snap.edges[i]);
    }
    out << "],\"underflow\":" << snap.underflow << ",\"overflow\":"
        << snap.overflow << ",\"sum\":" << fmt_double(snap.sum)
        << ",\"count\":" << snap.total() << ",\"counts\":[";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i != 0) out << ',';
      out << snap.counts[i];
    }
    out << "]}";
  }
  out << ']';

  if (recorder != nullptr) {
    out << ',';
    json_trace_section(out, *recorder);
  }
  if (slow != nullptr) {
    out << ',';
    json_slow_section(out, *slow);
  }

  out << "}\n";
}

void export_traces_json(std::ostream& out, const FlightRecorder* recorder,
                        const SlowQueryLog* slow) {
  out << '{';
  if (recorder != nullptr) {
    json_trace_section(out, *recorder);
  } else {
    out << "\"trace\":{\"mode\":\"off\",\"sample_every\":0,\"capacity\":0,"
           "\"recorded\":0},\"spans\":[]";
  }
  out << ',';
  if (slow != nullptr) {
    json_slow_section(out, *slow);
  } else {
    out << "\"slow\":{\"enabled\":false,\"threshold_ns\":-1,\"capacity\":0,"
           "\"captured\":0,\"backend\":\"\",\"metric\":\"\",\"shards\":0,"
           "\"spans\":[]}";
  }
  out << "}\n";
}

}  // namespace tdam::obs
