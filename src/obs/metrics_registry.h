// Low-overhead metrics substrate for the serving stack (Layer 7).
//
// The serving hot path (dispatcher thread + engine workers + submitters)
// records counters and latency samples millions of times per second; a
// single mutex in front of them (the pre-refactor ServingMetrics) turns the
// metrics object itself into a contention point.  This registry keeps the
// record side lock-free:
//
//  * Counter    — monotone, double-valued, striped across cache-line-aligned
//    atomic cells; each thread is assigned a stripe on first use and only
//    ever touches that cell (relaxed CAS-add), so concurrent writers never
//    share a line.  value() sums the stripes on scrape.
//  * Gauge      — one atomic double with set()/add()/max() — gauges are
//    written whole, so striping buys nothing.
//  * Histogram  — fixed bins over [lo, hi) with atomic per-bin counts,
//    under/overflow counts, and a running sum; observe() is one relaxed
//    fetch_add plus one CAS-add.  Two bucket layouts share the class:
//    kLinear (uniform width, the original geometry) and kExponential
//    (geometric edges lo·g^i — constant *relative* resolution, so one
//    instrument resolves p99s across the µs→s range that linear bins
//    smear into a single bucket).  The exponential bin index is one log()
//    call; both layouts stay lock-free.  snapshot() merges into a plain
//    HistogramSnapshot whose quantile() mirrors util::Histogram semantics
//    (uniform mass within a bin, clamps for under/overflow ranks, NaN when
//    empty), generalized to the snapshot's explicit edge vector.
//
// Instruments are created through the registry (creation takes a mutex —
// cold path only) and identified by (name, labels); re-requesting the same
// identity returns the same instrument, so components can share a registry
// without coordinating.  Pointers handed out are stable for the registry's
// lifetime.  Scrapes (export_prometheus / export_json / per-instrument
// reads) are safe against concurrent recording: every read is an atomic
// load, so a scrape observes each instrument atomically even mid-traffic
// (cross-instrument skew is bounded by whatever consistency the *caller*
// layers on top — ServingMetrics uses one batch mutex for its multi-counter
// batch section).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tdam::obs {

// Prometheus-style instrument labels, fixed at creation.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
// Stripe count for counters: enough that 8-16 serving threads rarely
// collide, small enough that scrape-time summing stays trivial.
inline constexpr std::size_t kStripes = 16;

// Each thread gets a stripe index on first use (round-robin over the
// process lifetime), so a given thread always hits the same cell.
std::size_t thread_stripe() noexcept;

// C++20 atomic<double> fetch_add is not yet universal; a relaxed CAS loop
// is equivalent for monotone accumulation.
inline void atomic_add(std::atomic<double>& cell, double v) noexcept {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed))
    ;
}

inline void atomic_max(std::atomic<double>& cell, double v) noexcept {
  double cur = cell.load(std::memory_order_relaxed);
  while (cur < v &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed))
    ;
}
}  // namespace detail

// Monotonically increasing, double-valued (doubles carry exact integers to
// 2^53, and wall-seconds/energy totals need fractions anyway).
class Counter {
 public:
  void add(double v = 1.0) noexcept {
    detail::atomic_add(cells_[detail::thread_stripe()].v, v);
  }
  double value() const noexcept {
    double total = 0.0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help, Labels labels)
      : name_(std::move(name)), help_(std::move(help)),
        labels_(std::move(labels)) {}
  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0.0, std::memory_order_relaxed);
  }

  struct alignas(64) Cell {
    std::atomic<double> v{0.0};
  };
  Cell cells_[detail::kStripes];
  std::string name_, help_;
  Labels labels_;
};

// Last-write-wins instantaneous value, plus an add() for up/down tracking
// and max() for high-water marks.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { detail::atomic_add(value_, v); }
  void max(double v) noexcept { detail::atomic_max(value_, v); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help, Labels labels)
      : name_(std::move(name)), help_(std::move(help)),
        labels_(std::move(labels)) {}
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
  std::string name_, help_;
  Labels labels_;
};

// Bucket layout of a Histogram: uniform-width bins or geometric edges.
enum class HistogramKind { kLinear, kExponential };

// Merged, plain-value view of a Histogram at one scrape instant.  `edges`
// always holds counts.size() + 1 monotone bucket boundaries (edges[0] == lo,
// edges.back() == hi) so readers never need to re-derive the geometry.
struct HistogramSnapshot {
  double lo = 0.0;
  double hi = 1.0;
  HistogramKind kind = HistogramKind::kLinear;
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  double sum = 0.0;

  std::uint64_t total() const {
    std::uint64_t t = underflow + overflow;
    for (auto c : counts) t += c;
    return t;
  }
  // Mean width; exact for linear layouts, a convenience for exponential
  // ones (per-bucket widths live in `edges`).
  double bin_width() const {
    return (hi - lo) / static_cast<double>(counts.size());
  }
  double mean() const {
    const auto t = total();
    return t == 0 ? 0.0 : sum / static_cast<double>(t);
  }
  // p in [0, 1] (throws outside); same estimator and clamping contract as
  // util::Histogram::quantile — uniform mass within a bucket (whatever its
  // width), under/overflow ranks clamp to lo/hi, NaN when empty.
  double quantile(double p) const;
};

// Fixed-bucket histogram with atomic cells: one fetch_add per observation.
// The layout (linear or exponential edges) is fixed at creation; observe()
// costs one division (linear) or one log() (exponential) to find the bin.
class Histogram {
 public:
  void observe(double x) noexcept {
    detail::atomic_add(sum_, x);
    if (x < lo_) {
      underflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (x >= hi_) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::size_t bin;
    if (kind_ == HistogramKind::kLinear) {
      bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                     static_cast<double>(counts_.size()));
    } else {
      bin = exponential_bin(x);
    }
    if (bin >= counts_.size()) bin = counts_.size() - 1;
    counts_[bin].fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

  HistogramKind kind() const { return kind_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  // Bucket boundaries, bins() + 1 entries; edges()[0] == lo(), back() == hi().
  const std::vector<double>& edges() const { return edges_; }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help, Labels labels,
            HistogramKind kind, double lo, double hi, std::size_t bins);
  void reset() noexcept;
  std::size_t exponential_bin(double x) const noexcept;

  HistogramKind kind_;
  double lo_, hi_;
  double inv_log_growth_ = 0.0;  // exponential: 1 / ln(edge growth factor)
  std::vector<double> edges_;
  std::deque<std::atomic<std::uint64_t>> counts_;  // deque: atomics don't move
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<double> sum_{0.0};
  std::string name_, help_;
  Labels labels_;
};

// The original class name, kept so call sites reading "linear histogram"
// stay valid; the layout a given instrument uses is its kind().
using LinearHistogram = Histogram;

// Owns instruments; hands out stable pointers.  Creation/lookup serialize
// on one mutex (cold); recording through the returned instruments never
// touches it.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent by (name, labels): a second request with the same identity
  // returns the existing instrument; the same identity registered as a
  // different kind (or a histogram with different geometry/layout) throws
  // std::invalid_argument.  Names/labels are exported verbatim (the
  // Prometheus exporter sanitizes names and escapes label values).
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  // Uniform bins over [lo, hi).
  Histogram& histogram(const std::string& name, const std::string& help,
                       double lo, double hi, std::size_t bins,
                       Labels labels = {});
  // Geometric buckets lo·g^i over [lo, hi), lo > 0; constant relative
  // width, so the same instrument resolves microseconds and seconds.
  Histogram& exponential_histogram(const std::string& name,
                                   const std::string& help, double lo,
                                   double hi, std::size_t bins,
                                   Labels labels = {});

  // Zeroes every instrument (counts, gauges, bins).  Racing recorders may
  // land increments on either side of the reset — same contract a process
  // restart gives a scraper.
  void reset();

  // Stable, registration-ordered scrape views (instrument pointers remain
  // valid for the registry's lifetime).
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;
  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the kind's store
  };
  static std::string identity(const std::string& name, const Labels& labels);
  Histogram& histogram_impl(const std::string& name, const std::string& help,
                            HistogramKind kind, double lo, double hi,
                            std::size_t bins, Labels labels);

  mutable std::mutex mutex_;
  // unique_ptr: instruments hold atomics, so they never move once created —
  // which is also what makes the handed-out references stable.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<std::pair<std::string, Entry>> order_;  // registration order
};

}  // namespace tdam::obs
