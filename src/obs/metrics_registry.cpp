#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tdam::obs {

namespace detail {

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

}  // namespace detail

double HistogramSnapshot::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(
        "HistogramSnapshot::quantile: p must be in [0, 1]");
  const auto n = total();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  const double rank = p * static_cast<double>(n);
  double cum = static_cast<double>(underflow);
  if (underflow > 0 && rank <= cum) return lo;
  const bool have_edges = edges.size() == counts.size() + 1;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c > 0.0 && rank <= cum + c) {
      const double frac = std::clamp((rank - cum) / c, 0.0, 1.0);
      if (have_edges)
        return edges[i] + frac * (edges[i + 1] - edges[i]);
      return lo + (static_cast<double>(i) + frac) * bin_width();
    }
    cum += c;
  }
  return hi;  // remaining mass is overflow: clamp to the binned range
}

Histogram::Histogram(std::string name, std::string help, Labels labels,
                     HistogramKind kind, double lo, double hi,
                     std::size_t bins)
    : kind_(kind), lo_(lo), hi_(hi), name_(std::move(name)),
      help_(std::move(help)), labels_(std::move(labels)) {
  if (!(hi > lo))
    throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0)
    throw std::invalid_argument("Histogram: need at least one bin");
  edges_.reserve(bins + 1);
  if (kind_ == HistogramKind::kLinear) {
    const double width = (hi - lo) / static_cast<double>(bins);
    for (std::size_t i = 0; i < bins; ++i)
      edges_.push_back(lo + static_cast<double>(i) * width);
  } else {
    if (!(lo > 0.0))
      throw std::invalid_argument(
          "Histogram: exponential buckets need lo > 0");
    const double log_growth = std::log(hi / lo) / static_cast<double>(bins);
    inv_log_growth_ = 1.0 / log_growth;
    for (std::size_t i = 0; i < bins; ++i)
      edges_.push_back(lo * std::exp(log_growth * static_cast<double>(i)));
  }
  edges_.push_back(hi);  // exact, whatever rounding the grid accumulated
  for (std::size_t i = 0; i < bins; ++i) counts_.emplace_back(0);
}

std::size_t Histogram::exponential_bin(double x) const noexcept {
  // Callers already excluded x < lo and x >= hi; log is safe and the
  // result non-negative (modulo a last-ulp wobble the clamp in observe()
  // absorbs on the high side and the max() here on the low side).
  const double b = std::log(x / lo_) * inv_log_growth_;
  return static_cast<std::size_t>(std::max(b, 0.0));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.lo = lo_;
  snap.hi = hi_;
  snap.kind = kind_;
  snap.edges = edges_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_)
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  snap.underflow = underflow_.load(std::memory_order_relaxed);
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string MetricsRegistry::identity(const std::string& name,
                                      const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in sane label text
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = identity(name, labels);
  for (const auto& [k, e] : order_)
    if (k == key) {
      if (e.kind != Kind::kCounter)
        throw std::invalid_argument("MetricsRegistry: '" + name +
                                    "' already registered as a non-counter");
      return *counters_[e.index];
    }
  counters_.push_back(
      std::unique_ptr<Counter>(new Counter(name, help, std::move(labels))));
  order_.emplace_back(key, Entry{Kind::kCounter, counters_.size() - 1});
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = identity(name, labels);
  for (const auto& [k, e] : order_)
    if (k == key) {
      if (e.kind != Kind::kGauge)
        throw std::invalid_argument("MetricsRegistry: '" + name +
                                    "' already registered as a non-gauge");
      return *gauges_[e.index];
    }
  gauges_.push_back(
      std::unique_ptr<Gauge>(new Gauge(name, help, std::move(labels))));
  order_.emplace_back(key, Entry{Kind::kGauge, gauges_.size() - 1});
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram_impl(const std::string& name,
                                           const std::string& help,
                                           HistogramKind kind, double lo,
                                           double hi, std::size_t bins,
                                           Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = identity(name, labels);
  for (const auto& [k, e] : order_)
    if (k == key) {
      if (e.kind != Kind::kHistogram)
        throw std::invalid_argument("MetricsRegistry: '" + name +
                                    "' already registered as a non-histogram");
      auto& h = *histograms_[e.index];
      if (h.kind() != kind || h.lo() != lo || h.hi() != hi ||
          h.bins() != bins)
        throw std::invalid_argument(
            "MetricsRegistry: '" + name +
            "' re-registered with different histogram geometry");
      return h;
    }
  histograms_.push_back(std::unique_ptr<Histogram>(
      new Histogram(name, help, std::move(labels), kind, lo, hi, bins)));
  order_.emplace_back(key, Entry{Kind::kHistogram, histograms_.size() - 1});
  return *histograms_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help, double lo,
                                      double hi, std::size_t bins,
                                      Labels labels) {
  return histogram_impl(name, help, HistogramKind::kLinear, lo, hi, bins,
                        std::move(labels));
}

Histogram& MetricsRegistry::exponential_histogram(const std::string& name,
                                                  const std::string& help,
                                                  double lo, double hi,
                                                  std::size_t bins,
                                                  Labels labels) {
  return histogram_impl(name, help, HistogramKind::kExponential, lo, hi, bins,
                        std::move(labels));
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& c : counters_) c->reset();
  for (auto& g : gauges_) g->reset();
  for (auto& h : histograms_) h->reset();
}

std::vector<const Counter*> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Counter*> out;
  for (const auto& [key, e] : order_)
    if (e.kind == Kind::kCounter) out.push_back(counters_[e.index].get());
  return out;
}

std::vector<const Gauge*> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Gauge*> out;
  for (const auto& [key, e] : order_)
    if (e.kind == Kind::kGauge) out.push_back(gauges_[e.index].get());
  return out;
}

std::vector<const Histogram*> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Histogram*> out;
  for (const auto& [key, e] : order_)
    if (e.kind == Kind::kHistogram) out.push_back(histograms_[e.index].get());
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

}  // namespace tdam::obs
