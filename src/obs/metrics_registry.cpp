#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tdam::obs {

namespace detail {

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

}  // namespace detail

double HistogramSnapshot::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(
        "HistogramSnapshot::quantile: p must be in [0, 1]");
  const auto n = total();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  const double rank = p * static_cast<double>(n);
  double cum = static_cast<double>(underflow);
  if (underflow > 0 && rank <= cum) return lo;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c > 0.0 && rank <= cum + c) {
      const double frac = std::clamp((rank - cum) / c, 0.0, 1.0);
      return lo + (static_cast<double>(i) + frac) * bin_width();
    }
    cum += c;
  }
  return hi;  // remaining mass is overflow: clamp to the binned range
}

LinearHistogram::LinearHistogram(std::string name, std::string help,
                                 Labels labels, double lo, double hi,
                                 std::size_t bins)
    : lo_(lo), hi_(hi), name_(std::move(name)), help_(std::move(help)),
      labels_(std::move(labels)) {
  if (!(hi > lo))
    throw std::invalid_argument("LinearHistogram: hi must exceed lo");
  if (bins == 0)
    throw std::invalid_argument("LinearHistogram: need at least one bin");
  for (std::size_t i = 0; i < bins; ++i) counts_.emplace_back(0);
}

HistogramSnapshot LinearHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.lo = lo_;
  snap.hi = hi_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_)
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  snap.underflow = underflow_.load(std::memory_order_relaxed);
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void LinearHistogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string MetricsRegistry::identity(const std::string& name,
                                      const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in sane label text
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = identity(name, labels);
  for (const auto& [k, e] : order_)
    if (k == key) {
      if (e.kind != Kind::kCounter)
        throw std::invalid_argument("MetricsRegistry: '" + name +
                                    "' already registered as a non-counter");
      return *counters_[e.index];
    }
  counters_.push_back(
      std::unique_ptr<Counter>(new Counter(name, help, std::move(labels))));
  order_.emplace_back(key, Entry{Kind::kCounter, counters_.size() - 1});
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = identity(name, labels);
  for (const auto& [k, e] : order_)
    if (k == key) {
      if (e.kind != Kind::kGauge)
        throw std::invalid_argument("MetricsRegistry: '" + name +
                                    "' already registered as a non-gauge");
      return *gauges_[e.index];
    }
  gauges_.push_back(
      std::unique_ptr<Gauge>(new Gauge(name, help, std::move(labels))));
  order_.emplace_back(key, Entry{Kind::kGauge, gauges_.size() - 1});
  return *gauges_.back();
}

LinearHistogram& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help, double lo,
                                            double hi, std::size_t bins,
                                            Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = identity(name, labels);
  for (const auto& [k, e] : order_)
    if (k == key) {
      if (e.kind != Kind::kHistogram)
        throw std::invalid_argument("MetricsRegistry: '" + name +
                                    "' already registered as a non-histogram");
      auto& h = *histograms_[e.index];
      if (h.lo() != lo || h.hi() != hi || h.bins() != bins)
        throw std::invalid_argument(
            "MetricsRegistry: '" + name +
            "' re-registered with different histogram geometry");
      return h;
    }
  histograms_.push_back(std::unique_ptr<LinearHistogram>(
      new LinearHistogram(name, help, std::move(labels), lo, hi, bins)));
  order_.emplace_back(key, Entry{Kind::kHistogram, histograms_.size() - 1});
  return *histograms_.back();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& c : counters_) c->reset();
  for (auto& g : gauges_) g->reset();
  for (auto& h : histograms_) h->reset();
}

std::vector<const Counter*> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Counter*> out;
  for (const auto& [key, e] : order_)
    if (e.kind == Kind::kCounter) out.push_back(counters_[e.index].get());
  return out;
}

std::vector<const Gauge*> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Gauge*> out;
  for (const auto& [key, e] : order_)
    if (e.kind == Kind::kGauge) out.push_back(gauges_[e.index].get());
  return out;
}

std::vector<const LinearHistogram*> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const LinearHistogram*> out;
  for (const auto& [key, e] : order_)
    if (e.kind == Kind::kHistogram) out.push_back(histograms_[e.index].get());
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

}  // namespace tdam::obs
