#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

namespace tdam::obs {

namespace {

// Environment parsing warns once per process, not once per server.  Both
// helpers are unreachable when tracing is compiled out.
[[maybe_unused]] void warn_once(const char* var, const char* got) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true))
    std::fprintf(stderr,
                 "tdam::obs: ignoring unrecognized %s='%s' "
                 "(expected off|sampled|full / a positive integer)\n",
                 var, got);
}

[[maybe_unused]] bool parse_positive(const char* text, long* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < 1) return false;
  *out = v;
  return true;
}

[[maybe_unused]] bool parse_non_negative(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(v >= 0.0)) return false;
  *out = v;
  return true;
}

}  // namespace

TraceConfig TraceConfig::from_env() {
  TraceConfig config;
#ifdef TDAM_TRACE_DISABLED
  config.mode = TraceMode::kOff;
  return config;
#else
  if (const char* mode = std::getenv("TDAM_TRACE")) {
    if (std::strcmp(mode, "off") == 0 || std::strcmp(mode, "0") == 0)
      config.mode = TraceMode::kOff;
    else if (std::strcmp(mode, "sampled") == 0)
      config.mode = TraceMode::kSampled;
    else if (std::strcmp(mode, "full") == 0)
      config.mode = TraceMode::kFull;
    else
      warn_once("TDAM_TRACE", mode);
  }
  if (const char* stride = std::getenv("TDAM_TRACE_SAMPLE")) {
    long v = 0;
    if (parse_positive(stride, &v))
      config.sample_every = static_cast<int>(v);
    else
      warn_once("TDAM_TRACE_SAMPLE", stride);
  }
  if (const char* cap = std::getenv("TDAM_TRACE_CAPACITY")) {
    long v = 0;
    if (parse_positive(cap, &v))
      config.capacity = static_cast<std::size_t>(v);
    else
      warn_once("TDAM_TRACE_CAPACITY", cap);
  }
  if (const char* slow = std::getenv("TDAM_SLOW_MS")) {
    double ms = 0.0;  // fractional milliseconds are a legitimate threshold
    if (parse_non_negative(slow, &ms))
      config.slow_threshold_ns = static_cast<std::int64_t>(ms * 1e6);
    else
      warn_once("TDAM_SLOW_MS", slow);
  }
  if (const char* cap = std::getenv("TDAM_SLOW_CAPACITY")) {
    long v = 0;
    if (parse_positive(cap, &v))
      config.slow_capacity = static_cast<std::size_t>(v);
    else
      warn_once("TDAM_SLOW_CAPACITY", cap);
  }
  return config;
#endif
}

FlightRecorder::FlightRecorder(TraceConfig config) : config_(config) {
#ifdef TDAM_TRACE_DISABLED
  config_.mode = TraceMode::kOff;  // the compile-time switch always wins
#endif
  if (config_.sample_every < 1) config_.sample_every = 1;
  if (config_.capacity < 1) config_.capacity = 1;
  ring_.resize(config_.capacity);  // zero heap allocation per span later
}

void FlightRecorder::record(const SpanRecord& span) {
  if (!span.traced() || span.trace_id == 0 || !sampled(span.trace_id)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[head_] = span;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<SpanRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  const std::size_t held =
      total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
  out.reserve(held);
  // Oldest first: when the ring has wrapped, head_ points at the oldest.
  const std::size_t start = total_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < held; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  head_ = 0;
  total_ = 0;
}

SlowQueryLog::SlowQueryLog(std::int64_t threshold_ns, std::size_t capacity)
    : threshold_ns_(threshold_ns), capacity_(capacity < 1 ? 1 : capacity) {
  if (threshold_ns_ >= 0) ring_.resize(capacity_);
}

void SlowQueryLog::set_context(SlowQueryContext context) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_ = std::move(context);
}

SlowQueryContext SlowQueryLog::context() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return context_;
}

void SlowQueryLog::maybe_capture(const SpanRecord& span) {
  if (threshold_ns_ < 0 || !span.traced() || span.trace_id == 0) return;
  const std::int64_t wall = span.wall_ns();
  if (wall < 0 || wall < threshold_ns_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[head_] = span;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<SpanRecord> SlowQueryLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  if (ring_.empty()) return out;
  const std::size_t held =
      total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
  out.reserve(held);
  const std::size_t start = total_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < held; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::uint64_t SlowQueryLog::captured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void SlowQueryLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  head_ = 0;
  total_ = 0;
}

}  // namespace tdam::obs
